package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/durable"
	"selfheal/internal/engine"
	"selfheal/internal/obs"
	"selfheal/internal/recovery"
	"selfheal/internal/stg"
	"selfheal/internal/triage"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Config sizes the sharded service.
type Config struct {
	// Shards is the number of worker shards executing normal tasks
	// (default 1).
	Shards int
	// BatchMax bounds how many concurrently submitted commits fold into
	// one group commit (default 8).
	BatchMax int
	// CommitQueue buffers the commit pipeline (default 4×Shards).
	CommitQueue int
	// Inbox buffers each shard's run-delivery channel (default 32).
	Inbox int
	// DeferMax bounds the deferred-run queue holding submissions whose
	// key footprints conflict across shards; a full queue rejects with
	// ErrQueueFull (default 16).
	DeferMax int
	// AlertBuf bounds the IDS-alert queue; Report on a full queue drops
	// the alert, counts it lost and returns ErrQueueFull — the explicit
	// backpressure matching the CTMC's loss edge (default 8).
	AlertBuf int
	// RecoveryBuf bounds the recovery-unit queue; a full buffer blocks
	// the analyzer and forces a drain, §IV.E (default 4).
	RecoveryBuf int
	// Repair tunes the recovery executor.
	Repair recovery.Options
	// Triage selects the streaming alert-triage mechanisms (cone
	// coalescing, covered-alert prefilter, Report-time dedupe). The zero
	// value disables all of them: one analysis per alert, exactly the
	// per-alert pipeline the §V CTMC models. See internal/triage and
	// docs/TRIAGE.md.
	Triage triage.Options
	// SnapshotEvery triggers an automatic durable checkpoint once this
	// many log entries have committed beyond the latest snapshot. Durable
	// services only (NewDurable); 0 disables automatic checkpoints —
	// restores replay the whole log. See docs/DURABILITY.md.
	SnapshotEvery int
	// AuditRepairs validates every installed repair's schedule against the
	// Theorem-3 partial orders (recovery.AuditSchedule) and accumulates
	// violations in Metrics.AuditViolations. The audit costs one pass over
	// the repair schedule; it exists so a fuzzing or chaos campaign can
	// assert "no repair ever violated the constraint DAG" from outside
	// (GET /api/v1/chaos/verify, docs/FUZZING.md).
	AuditRepairs bool
	// Fault selects deliberate soundness faults for the fuzzer's mutation
	// smoke. Never set in production.
	Fault FaultInjection
	// Strict selects the paper's strict-correctness strategy (Theorem-4
	// gating): every shard quiesces for the whole SCAN and RECOVERY
	// period, so no normal task executes while recovery work is known or
	// pending. The default (false) is §III.D strategy 3 with §IV partial
	// quiescence: shards keep stepping through analysis, and each repair
	// pauses only the shards whose key footprints intersect the damage
	// closure — clean shards serve new and in-flight runs through the
	// whole RECOVERY window. Normal tasks that consumed corrupt data
	// before the pause are folded into the damage closure when the unit
	// executes, so the final state still converges to the strict one.
	Strict bool
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.BatchMax < 1 {
		c.BatchMax = 8
	}
	if c.CommitQueue < 1 {
		c.CommitQueue = 4 * c.Shards
	}
	if c.Inbox < 1 {
		c.Inbox = 32
	}
	if c.DeferMax == 0 {
		c.DeferMax = 16
	}
	if c.AlertBuf < 1 {
		c.AlertBuf = 8
	}
	if c.RecoveryBuf < 1 {
		c.RecoveryBuf = 4
	}
	return c
}

// FaultInjection selects deliberate soundness faults, used only by the
// fuzzer's mutation smoke (cmd/selfheal-fuzz -fault-skip-repair): a service
// booted with a fault MUST fail the fuzzing oracles, which proves the
// oracle suite can actually catch an unsound implementation. See
// docs/FUZZING.md.
type FaultInjection struct {
	// SkipRepair makes the recovery worker dequeue units and acknowledge
	// them as executed without performing any repair — alerts are consumed
	// but the damage stays in the store.
	SkipRepair bool
}

// Metrics counts the service's activity. All fields are cumulative. The
// JSON names are the wire contract of GET /api/v1/state (docs/API.md).
type Metrics struct {
	// AlertsReported, AlertsLost, AlertsAnalyzed count IDS reports;
	// AlertsLost is the measured side of the CTMC loss probability.
	AlertsReported int `json:"alerts_reported"`
	AlertsLost     int `json:"alerts_lost"`
	AlertsAnalyzed int `json:"alerts_analyzed"`
	// UnitsExecuted counts recovery units completed; RecoveryErrors
	// counts units whose repair failed.
	UnitsExecuted  int `json:"units_executed"`
	RecoveryErrors int `json:"recovery_errors"`
	// Undone, Redone, NewExecuted accumulate recovery work sizes.
	Undone      int `json:"undone"`
	Redone      int `json:"redone"`
	NewExecuted int `json:"new_executed"`
	// RunsSubmitted, RunsCompleted, RunsFailed count run lifecycles.
	RunsSubmitted int `json:"runs_submitted"`
	RunsCompleted int `json:"runs_completed"`
	RunsFailed    int `json:"runs_failed"`
	// NormalSteps totals committed normal task executions; ShardSteps
	// splits them per shard.
	NormalSteps int   `json:"normal_steps"`
	ShardSteps  []int `json:"shard_steps"`
	// CommitBatches and CommitEntries count group commits and the entries
	// they carried; Entries/Batches is the achieved group-commit fold.
	CommitBatches int `json:"commit_batches"`
	CommitEntries int `json:"commit_entries"`
	// ConesAnalyzed counts damage-cone analyses (AnalyzeGraph calls);
	// AlertsAnalyzed/ConesAnalyzed is the achieved coalescing fold.
	ConesAnalyzed int `json:"cones_analyzed"`
	// AlertsPrefiltered counts alerts dropped at triage because an
	// in-flight recovery unit's damage closure already covered them.
	AlertsPrefiltered int `json:"alerts_prefiltered"`
	// AlertsDeduped counts Report-time absorptions of bad sets already
	// queued (only nonzero with Triage.Dedupe).
	AlertsDeduped int `json:"alerts_deduped"`
	// AuditViolations counts Theorem-3 partial-order violations found by
	// the per-repair schedule audit (only maintained with
	// Config.AuditRepairs; always 0 on a sound implementation).
	AuditViolations int `json:"audit_violations"`
}

// RunInfo is one run's externally visible status (the /api/v1/runs/{id}
// resource).
type RunInfo struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Shard  int    `json:"shard"`
	Steps  int    `json:"steps"`
	Error  string `json:"error,omitempty"`
}

// alert is one queued IDS report.
type alert struct {
	bad []wlog.InstanceID
	// walID is the alert's durable WAL record ID (0 when the service has
	// no WAL or the record could not be written). Restarts re-queue every
	// alert whose ID was never acked.
	walID uint64
}

// ackGroup tracks one drained alert batch's durable acknowledgement: the
// ack record is written only after EVERY unit the batch produced has
// completed, so a crash mid-batch re-queues all of its alerts. Guarded by
// Service.alertMu.
type ackGroup struct {
	ids       []uint64
	remaining int
}

// unit is one analyzed unit of recovery tasks.
type unit struct {
	bad []wlog.InstanceID
	an  *recovery.Analysis
	// release re-arms the covered-alert prefilter when the unit completes;
	// nil when Triage.Prefilter is off.
	release func()
	// group refcounts the durable ack for the alert batch this unit came
	// from; nil in non-durable mode.
	group *ackGroup
}

// Service is the concurrent self-healing workflow service: N shard workers
// execute normal tasks (key-disjoint runs in parallel, commits group-
// committed in LSN order) while a dedicated recovery worker turns IDS
// alerts into recovery units and executes them — analysis fully concurrent
// with normal processing, repair under a brief quiescence.
//
// Concurrency contract: every exported method is safe from any goroutine.
type Service struct {
	cfg   Config
	eng   *engine.Engine
	graph *deps.IncrementalGraph
	com   *committer
	exec  *executor

	alerts chan alert

	mu            sync.Mutex
	specs         map[string]*wf.Spec
	unitQ         []*unit
	alertsQueued  int
	analyzing     bool
	executing     bool
	metrics       Metrics
	lastRecovery  error
	lastAudit     error
	gateHeld      bool // recovery goroutine only; under mu for State readers
	startStopOnce struct{ started, stopped sync.Once }

	// cover holds the damage-closure signatures of queued and executing
	// units for the covered-alert prefilter (Triage.Prefilter); checked
	// and armed only by the recovery goroutine.
	cover *triage.Coverage
	// pendingKeys refcounts the canonical bad-set keys sitting unanalyzed
	// in the alert channel for Report-time dedupe (Triage.Dedupe);
	// guarded by mu.
	pendingKeys map[string]int
	// drainSecPerAlert is the EWMA of measured alert-consumption cost
	// (seconds per drained alert), feeding RetryAfterSeconds; guarded by
	// mu, 0 until the first batch is handled.
	drainSecPerAlert float64

	stopCh chan struct{}
	wg     sync.WaitGroup

	// Durable mode (NewDurable); all nil/zero otherwise. wal is the
	// write-ahead log every commit is synced through; specStates keeps the
	// registered wfjson documents for checkpoints; preEpoch marks runs
	// whose pre-snapshot history was truncated at boot (repairs touching
	// their footprints are refused with recovery.ErrHorizon). submitMu
	// serializes durable submissions against checkpoints; alertMu guards
	// liveAlerts and the WAL alert/ack records; durableEpoch (under mu) is
	// the store's current compaction horizon.
	wal            *durable.WAL
	submitMu       sync.Mutex
	alertMu        sync.Mutex
	liveAlerts     map[uint64][]wlog.InstanceID
	specStates     map[string]durable.SpecState
	preEpoch       map[string]bool
	durableEpoch   int
	restoredAlerts []durable.PendingAlert
	ckptCh         chan chan error

	o svcObs
}

// svcObs is the service's optional instrumentation; zero means off
// (obs handles are nil-safe).
type svcObs struct {
	enabled                          bool
	reported, lost, analyzed, units  *obs.Counter
	undone, redone, newExec          *obs.Counter
	cones, prefiltered, deduped      *obs.Counter
	batches, entries                 *obs.Counter
	runsCompleted, runsFailed        *obs.Counter
	alertDepth, unitDepth, deferDpth *obs.Gauge
	quiesceSeconds                   *obs.Histogram
	quiescedShards                   *obs.Histogram
	coneSize, coalesceRatio          *obs.Histogram
	stepsByShard                     []*obs.Counter
	activeByShard                    []*obs.Gauge
}

// New builds a sharded service over a fresh store and log. Call Start to
// spin up the workers and Stop to shut them down.
func New(cfg Config, store *data.Store) (*Service, error) {
	cfg = cfg.withDefaults()
	if store == nil {
		store = data.NewStore()
	}
	eng := engine.New(store, wlog.New())
	s := &Service{
		cfg:         cfg,
		eng:         eng,
		graph:       deps.NewIncremental(eng.Log()),
		com:         newCommitter(eng, cfg.BatchMax, cfg.CommitQueue),
		specs:       make(map[string]*wf.Spec),
		alerts:      make(chan alert, cfg.AlertBuf),
		cover:       triage.NewCoverage(),
		pendingKeys: make(map[string]int),
		stopCh:      make(chan struct{}),
	}
	s.exec = newExecutor(eng, s.com, cfg.Shards, cfg.Inbox, cfg.DeferMax)
	return s, nil
}

// Observe wires the service's instrumentation into reg: the engine's and
// log's metrics plus the shard-layer families (docs/OBSERVABILITY.md). Must
// be called before Start.
func (s *Service) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.eng.Observe(reg)
	s.eng.Log().Observe(reg)
	s.o = svcObs{
		enabled:       true,
		reported:      reg.Counter(obs.MAlertsReported),
		lost:          reg.Counter(obs.MAlertsLost),
		analyzed:      reg.Counter(obs.MAlertsAnalyzed),
		units:         reg.Counter(obs.MUnitsExecuted),
		undone:        reg.Counter(obs.MUndone),
		redone:        reg.Counter(obs.MRedone),
		newExec:       reg.Counter(obs.MNewExecuted),
		batches:       reg.Counter(obs.MShardCommitBatches),
		entries:       reg.Counter(obs.MShardCommitEntries),
		runsCompleted: reg.Counter(obs.MShardRunsCompleted),
		runsFailed:    reg.Counter(obs.MShardRunsFailed),
		alertDepth:    reg.Gauge(obs.MAlertQueueDepth),
		unitDepth:     reg.Gauge(obs.MRecoveryQueueDepth),
		deferDpth:     reg.Gauge(obs.MShardDeferredRuns),
		quiesceSeconds: reg.Histogram(obs.MShardQuiesceSeconds,
			obs.LatencyBuckets),
		quiescedShards: reg.Histogram(obs.MShardQuiescedShards,
			obs.TickBuckets),
		cones:         reg.Counter(obs.MTriageCones),
		prefiltered:   reg.Counter(obs.MTriagePrefilterHits),
		deduped:       reg.Counter(obs.MTriageDeduped),
		coneSize:      reg.Histogram(obs.MTriageConeSize, obs.TickBuckets),
		coalesceRatio: reg.Histogram(obs.MTriageCoalesceRatio, obs.TickBuckets),
	}
	for i := 0; i < s.cfg.Shards; i++ {
		s.o.stepsByShard = append(s.o.stepsByShard,
			reg.Counter(fmt.Sprintf("%s{shard=\"%d\"}", obs.MShardSteps, i)))
		s.o.activeByShard = append(s.o.activeByShard,
			reg.Gauge(fmt.Sprintf("%s{shard=\"%d\"}", obs.MShardActiveRuns, i)))
	}
	s.exec.obs = execObs{steps: s.o.stepsByShard, active: s.o.activeByShard,
		deferred: s.o.deferDpth, completed: s.o.runsCompleted, failed: s.o.runsFailed}
	s.com.obs = comObs{batches: s.o.batches, entries: s.o.entries}
	if s.wal != nil {
		s.wal.Observe(reg)
	}
}

// Engine exposes the underlying engine (attack injection in tests goes
// through it — quiesce via Pause or route through InjectForged for safety).
func (s *Service) Engine() *engine.Engine { return s.eng }

// Store returns the current (possibly repaired) store.
func (s *Service) Store() *data.Store { return s.eng.Store() }

// Log returns the system log.
func (s *Service) Log() *wlog.Log { return s.eng.Log() }

// Start spins up the commit pipeline, the shard workers and the recovery
// worker.
func (s *Service) Start() {
	s.startStopOnce.started.Do(func() {
		s.com.start()
		s.exec.start()
		s.wg.Add(1)
		go s.recoveryLoop()
		if s.wal != nil {
			if len(s.restoredAlerts) > 0 {
				s.wg.Add(1)
				go s.feedRestoredAlerts()
			}
			if s.cfg.SnapshotEvery > 0 {
				s.wg.Add(1)
				go s.snapshotLoop()
			}
		}
	})
}

// Stop shuts the service down: recovery worker first (it may hold the
// quiesce gate), then the shard workers, then the commit pipeline (still
// needed to acknowledge in-flight commits until the workers have joined).
func (s *Service) Stop() {
	s.startStopOnce.stopped.Do(func() {
		close(s.stopCh)
		s.wg.Wait()
		s.exec.stop()
		s.com.stop()
		if s.wal != nil {
			// Flush and close the WAL last: the committer's final batches
			// have synced through it.
			_ = s.wal.Close()
		}
	})
}

// SubmitRun registers a workflow run for sharded execution. Errors wrap
// engine.ErrBadSpec, engine.ErrRunExists or ErrQueueFull.
func (s *Service) SubmitRun(id string, spec *wf.Spec) error {
	if s.wal != nil {
		// A bare *wf.Spec has no serializable form: the WAL could not
		// write a spec record and a restore would reject the run's
		// entries. Durable submissions must carry the wfjson document.
		return fmt.Errorf("shard: run %s: durable service requires SubmitRunSpec: %w", id, engine.ErrBadSpec)
	}
	s.mu.Lock()
	if _, dup := s.specs[id]; dup {
		s.mu.Unlock()
		return fmt.Errorf("shard: run %s: %w", id, engine.ErrRunExists)
	}
	// Register the spec before the first commit can land, so a concurrent
	// damage analysis never sees a spec-less run.
	s.specs[id] = spec
	s.mu.Unlock()

	if err := s.exec.submit(id, spec); err != nil {
		s.mu.Lock()
		delete(s.specs, id)
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	s.metrics.RunsSubmitted++
	s.mu.Unlock()
	return nil
}

// RunInfo returns the status of a submitted run; unknown IDs wrap
// engine.ErrUnknownRun.
func (s *Service) RunInfo(id string) (RunInfo, error) {
	x := s.exec
	x.mu.Lock()
	rs, ok := x.runs[id]
	if !ok {
		x.mu.Unlock()
		return RunInfo{}, fmt.Errorf("shard: run %s: %w", id, engine.ErrUnknownRun)
	}
	info := RunInfo{ID: id, Status: rs.state.String(), Shard: rs.shard}
	if rs.err != nil {
		info.Error = rs.err.Error()
	}
	x.mu.Unlock()
	info.Steps = len(s.eng.Log().Trace(id, false))
	return info, nil
}

// Runs lists every submitted run, sorted by ID.
func (s *Service) Runs() []RunInfo {
	x := s.exec
	x.mu.Lock()
	ids := make([]string, 0, len(x.runs))
	for id := range x.runs {
		ids = append(ids, id)
	}
	x.mu.Unlock()
	sort.Strings(ids)
	out := make([]RunInfo, 0, len(ids))
	for _, id := range ids {
		if info, err := s.RunInfo(id); err == nil {
			out = append(out, info)
		}
	}
	return out
}

// Report delivers an IDS alert naming malicious committed instances. A full
// alert queue drops the alert, counts it lost and returns ErrQueueFull;
// alerts naming instances absent from the log wrap engine.ErrUnknownRun.
// Safe from any goroutine.
func (s *Service) Report(bad []wlog.InstanceID) error {
	_, dropped, err := s.ReportAlerts([]triage.Alert{{Bad: bad}})
	if err != nil {
		return err
	}
	if dropped > 0 {
		return fmt.Errorf("shard: alert queue full (capacity %d): %w", s.cfg.AlertBuf, ErrQueueFull)
	}
	return nil
}

// ReportAlerts delivers a batch of IDS alerts in one admission. The whole
// batch is validated first — a malformed or unknown-instance alert rejects
// the batch with nothing admitted. Valid alerts are then admitted
// individually: admitted counts alerts queued for analysis (including, with
// Triage.Dedupe, repeats absorbed by an already-queued twin), dropped
// counts alerts lost to a full queue. Callers seeing dropped > 0 should
// back off for RetryAfterSeconds. Safe from any goroutine.
func (s *Service) ReportAlerts(alerts []triage.Alert) (admitted, dropped int, err error) {
	if len(alerts) == 0 {
		return 0, 0, fmt.Errorf("shard: %w: empty alert batch", engine.ErrBadSpec)
	}
	// Syntax over the whole batch first: a malformed ID anywhere is a bad
	// request (400) regardless of position, while a well-formed ID absent
	// from the log is a lookup miss (404).
	for _, a := range alerts {
		if len(a.Bad) == 0 {
			return 0, 0, fmt.Errorf("shard: %w: alert names no instances", engine.ErrBadSpec)
		}
		for _, id := range a.Bad {
			if _, _, _, perr := wlog.ParseInstance(id); perr != nil {
				return 0, 0, fmt.Errorf("shard: %w: malformed instance ID: %v", engine.ErrBadSpec, perr)
			}
		}
	}
	for _, a := range alerts {
		for _, id := range a.Bad {
			if _, ok := s.eng.Log().Get(id); !ok {
				return 0, 0, fmt.Errorf("shard: alert names unknown instance %s: %w", id, engine.ErrUnknownRun)
			}
		}
	}
	wrote := false
	s.mu.Lock()
	for _, a := range alerts {
		s.metrics.AlertsReported++
		s.o.reported.Inc()
		if s.cfg.Triage.Dedupe && s.pendingKeys[triage.Key(a.Bad)] > 0 {
			// Absorbed by a queued twin; the twin's durable record (if
			// any) covers the same repair, so no WAL record is written.
			s.metrics.AlertsDeduped++
			s.o.deduped.Inc()
			admitted++
			continue
		}
		// Every send happens under s.mu, so the capacity check cannot race
		// another admitter; the send below can never block.
		if len(s.alerts) == cap(s.alerts) {
			s.metrics.AlertsLost++
			s.o.lost.Inc()
			dropped++
			continue
		}
		var walID uint64
		if s.wal != nil {
			// The record precedes the queueing: a crash after this point
			// re-queues the alert at restart. A WAL write failure degrades
			// to in-memory admission (walID 0) — the sticky WAL error
			// surfaces on the commit path.
			s.alertMu.Lock()
			if id, werr := s.wal.AppendAlert(a.Bad); werr == nil {
				s.liveAlerts[id] = a.Bad
				walID = id
				wrote = true
			}
			s.alertMu.Unlock()
		}
		s.alerts <- alert{bad: a.Bad, walID: walID}
		s.alertsQueued++
		if s.cfg.Triage.Dedupe {
			s.pendingKeys[triage.Key(a.Bad)]++
		}
		admitted++
	}
	s.o.alertDepth.Set(int64(s.alertsQueued))
	s.mu.Unlock()
	if wrote {
		// Make the admissions durable before acknowledging the reporter,
		// outside s.mu so analysis is never blocked on the fsync.
		if err := s.wal.Sync(); err != nil {
			return admitted, dropped, err
		}
	}
	return admitted, dropped, nil
}

// DefaultDrainSecPerAlert seeds the Retry-After estimate before the service
// has measured its own drain rate.
const DefaultDrainSecPerAlert = 0.05

// EstimateRetryAfter converts an alert-queue depth and a measured
// consumption cost (seconds per alert) into a Retry-After hint in whole
// seconds, clamped to [1, 60].
func EstimateRetryAfter(queued int, secPerAlert float64) int {
	sec := int(math.Ceil(float64(queued) * secPerAlert))
	if sec < 1 {
		return 1
	}
	if sec > 60 {
		return 60
	}
	return sec
}

// RetryAfterSeconds estimates how long a rejected reporter should back off:
// the time to drain the current alert queue at the measured per-alert
// consumption rate (DefaultDrainSecPerAlert until measured).
func (s *Service) RetryAfterSeconds() int {
	s.mu.Lock()
	queued, spa := s.alertsQueued, s.drainSecPerAlert
	s.mu.Unlock()
	if spa == 0 {
		spa = DefaultDrainSecPerAlert
	}
	return EstimateRetryAfter(queued, spa)
}

// State classifies the service per §IV.C: SCAN while alerts are queued or
// under analysis, RECOVERY while units are queued or executing, NORMAL
// otherwise.
func (s *Service) State() stg.Class {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stateLocked()
}

func (s *Service) stateLocked() stg.Class {
	switch {
	case s.alertsQueued > 0 || s.analyzing:
		return stg.Scan
	case len(s.unitQ) > 0 || s.executing:
		return stg.Recovery
	default:
		return stg.Normal
	}
}

// QueueLengths returns (alerts queued, recovery units queued, runs
// deferred).
func (s *Service) QueueLengths() (int, int, int) {
	s.mu.Lock()
	a, r := s.alertsQueued, len(s.unitQ)
	s.mu.Unlock()
	s.exec.mu.Lock()
	d := len(s.exec.deferred)
	s.exec.mu.Unlock()
	return a, r, d
}

// Metrics returns a copy of the counters. Safe from any goroutine.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	m := s.metrics
	s.mu.Unlock()
	m.CommitBatches = int(s.com.batches.Load())
	m.CommitEntries = int(s.com.entries.Load())
	m.RunsCompleted = int(s.exec.completed.Load())
	m.RunsFailed = int(s.exec.failed.Load())
	for i := range s.exec.steps {
		n := int(s.exec.steps[i].Load())
		m.ShardSteps = append(m.ShardSteps, n)
		m.NormalSteps += n
	}
	return m
}

// LastRecoveryError returns the most recent failed repair, if any.
func (s *Service) LastRecoveryError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRecovery
}

// LastAuditError returns the most recent Theorem-3 schedule-audit
// violation, if any (Config.AuditRepairs).
func (s *Service) LastAuditError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastAudit
}

// InjectForged commits a forged task through the commit pipeline, so the
// injection serializes with concurrent group commits exactly like any other
// log append.
func (s *Service) InjectForged(run string, task wf.TaskID, readKeys []data.Key, writes map[data.Key]data.Value) (wlog.InstanceID, error) {
	var inst wlog.InstanceID
	err := s.com.exec(func() error {
		var e error
		inst, e = s.eng.InjectForged(run, task, readKeys, writes)
		return e
	})
	return inst, err
}

// WaitIdle blocks until every submitted run has retired and the service is
// back to NORMAL with no recovery work pending, or ctx expires.
func (s *Service) WaitIdle(ctx context.Context) error {
	for {
		if s.exec.idle() && s.State() == stg.Normal {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// DrainRecovery blocks until the service returns to NORMAL (all alerts
// analyzed, all units executed), or ctx expires. Normal runs may still be
// stepping.
func (s *Service) DrainRecovery(ctx context.Context) error {
	for {
		if s.State() == stg.Normal {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// recoveryLoop is the dedicated recovery worker: it drains alerts into
// units (SCAN) and executes units (RECOVERY) with alert analysis taking
// priority, per the §IV.C discipline — a normal task cannot run before all
// recovery tasks are known only in Strict mode, where the loop holds the
// shard gate for the whole SCAN+RECOVERY period.
func (s *Service) recoveryLoop() {
	defer s.wg.Done()
	defer s.releaseGate()
	for {
		// Alerts first: SCAN precedes RECOVERY. Checkpoint requests (nil
		// channel on non-durable services) are served between units so a
		// snapshot never interleaves with a repair installation.
		select {
		case <-s.stopCh:
			return
		case a := <-s.alerts:
			s.handleBatch(s.drainAlerts(a))
			continue
		case resp := <-s.ckptCh:
			resp <- s.checkpoint()
			continue
		default:
		}
		if s.pendingUnits() > 0 {
			s.executeUnit()
			continue
		}
		// Back to NORMAL: release the strict-mode gate and block for the
		// next alert.
		s.releaseGate()
		select {
		case <-s.stopCh:
			return
		case a := <-s.alerts:
			s.handleBatch(s.drainAlerts(a))
		case resp := <-s.ckptCh:
			resp <- s.checkpoint()
		}
	}
}

// drainAlerts collects the batch for one SCAN pass: just the received alert
// in the per-alert pipeline, or everything currently queued when cone
// coalescing is on.
func (s *Service) drainAlerts(first alert) []alert {
	batch := []alert{first}
	if !s.cfg.Triage.Coalesce {
		return batch
	}
	for {
		select {
		case a := <-s.alerts:
			batch = append(batch, a)
		default:
			return batch
		}
	}
}

func (s *Service) pendingUnits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.unitQ)
}

// holdGate quiesces every shard (idempotent); releaseGate resumes them.
// Only the recovery goroutine calls either (Strict mode).
func (s *Service) holdGate() {
	s.mu.Lock()
	held := s.gateHeld
	s.mu.Unlock()
	if held {
		return
	}
	s.exec.pauseAll()
	s.mu.Lock()
	s.gateHeld = true
	s.mu.Unlock()
}

func (s *Service) releaseGate() {
	s.mu.Lock()
	held := s.gateHeld
	s.gateHeld = false
	s.mu.Unlock()
	if held {
		s.exec.resumeAll()
	}
}

// handleBatch triages one drained batch of alerts into units of recovery
// tasks: prefiltered alerts (bad set already inside an in-flight unit's
// damage closure) are dropped, the survivors are partitioned into damage
// cones, and each cone gets one AnalyzeGraph call. The damage analysis runs
// fully concurrently with normal stepping (except in Strict mode): it reads
// an epoch-pinned snapshot of the incremental dependence graph, so
// concurrent commits never tear the view. With triage off the batch is one
// alert and one analysis — the legacy per-alert pipeline.
func (s *Service) handleBatch(batch []alert) {
	start := time.Now()
	if s.cfg.Strict {
		// Theorem-4 gating: no normal task may run once recovery work is
		// known to be pending.
		s.holdGate()
	}
	// §IV.E forced drain: a full unit buffer blocks the analyzer until the
	// scheduler drains a unit.
	for s.pendingUnits() >= s.cfg.RecoveryBuf {
		s.executeUnit()
	}
	s.mu.Lock()
	s.alertsQueued -= len(batch)
	s.analyzing = true
	s.o.alertDepth.Set(int64(s.alertsQueued))
	specs := s.specsCopyLocked()
	if s.cfg.Triage.Dedupe {
		for _, a := range batch {
			k := triage.Key(a.bad)
			if s.pendingKeys[k]--; s.pendingKeys[k] <= 0 {
				delete(s.pendingKeys, k)
			}
		}
	}
	s.mu.Unlock()

	// Covered-alert prefilter: only the recovery goroutine checks, arms and
	// releases coverage, so a covering unit can never complete between the
	// check here and the alert being dropped.
	survivors := make([]triage.Alert, 0, len(batch))
	prefiltered := 0
	for _, a := range batch {
		if s.cfg.Triage.Prefilter && s.cover.Covered(a.bad) {
			prefiltered++
			continue
		}
		survivors = append(survivors, triage.Alert{Bad: a.bad})
	}

	g := s.graph.Snapshot()
	var cones []triage.Cone
	switch {
	case len(survivors) == 0:
		// Every drained alert was covered by an in-flight unit.
	case s.cfg.Triage.Coalesce:
		cones = triage.Partition(g, survivors)
	default:
		cones = []triage.Cone{triage.ConeOf(survivors[0])}
	}
	units := make([]*unit, 0, len(cones))
	for _, c := range cones {
		an := recovery.AnalyzeGraph(g, s.eng.Log(), specs, c.Bad)
		u := &unit{bad: c.Bad, an: an}
		if s.cfg.Triage.Prefilter {
			// Signature = DefiniteUndo: the instances this unit's repair is
			// guaranteed to undo (and, per Theorem 2, re-execute where
			// legitimate); candidate undos are excluded.
			u.release = s.cover.Arm(an.DefiniteUndo)
		}
		units = append(units, u)
		s.o.coneSize.Observe(float64(c.Alerts))
	}
	if len(cones) > 0 && s.o.enabled {
		s.o.coalesceRatio.Observe(float64(len(survivors)) / float64(len(cones)))
	}

	if s.wal != nil {
		// Durable acknowledgement rides the whole drained batch: the ack
		// record is written only after every unit completes (prefiltered
		// alerts are covered by an in-flight unit and ack with the batch).
		var ids []uint64
		for _, a := range batch {
			if a.walID != 0 {
				ids = append(ids, a.walID)
			}
		}
		if len(ids) > 0 {
			if len(units) == 0 {
				s.ackAlerts(ids)
			} else {
				grp := &ackGroup{ids: ids, remaining: len(units)}
				for _, u := range units {
					u.group = grp
				}
			}
		}
	}

	perAlert := time.Since(start).Seconds() / float64(len(batch))
	s.mu.Lock()
	s.analyzing = false
	s.unitQ = append(s.unitQ, units...)
	s.metrics.AlertsAnalyzed += len(survivors)
	s.metrics.ConesAnalyzed += len(cones)
	s.metrics.AlertsPrefiltered += prefiltered
	if s.drainSecPerAlert == 0 {
		s.drainSecPerAlert = perAlert
	} else {
		s.drainSecPerAlert = 0.7*s.drainSecPerAlert + 0.3*perAlert
	}
	s.o.unitDepth.Set(int64(len(s.unitQ)))
	s.mu.Unlock()
	s.o.analyzed.Add(int64(len(survivors)))
	s.o.cones.Add(int64(len(cones)))
	s.o.prefiltered.Add(int64(prefiltered))
}

func (s *Service) specsCopyLocked() map[string]*wf.Spec {
	specs := make(map[string]*wf.Spec, len(s.specs))
	for id, sp := range s.specs {
		specs[id] = sp
	}
	return specs
}

// executeUnit runs the repair for the head recovery unit. The repair
// re-analyzes the log (normal tasks that consumed corrupt data since the
// alert are folded into the damage closure). In Strict mode every shard is
// already quiesced and the repaired store is swapped in wholesale; otherwise
// only the shards owning damage-closure keys pause while the parallel,
// damage-scoped repair runs, and the repaired chains are merged into the
// live store through the commit pipeline — atomically with respect to every
// group commit from the still-running clean shards.
func (s *Service) executeUnit() {
	s.mu.Lock()
	if len(s.unitQ) == 0 {
		s.mu.Unlock()
		return
	}
	u := s.unitQ[0]
	s.unitQ = s.unitQ[1:]
	s.executing = true
	s.o.unitDepth.Set(int64(len(s.unitQ)))
	s.mu.Unlock()
	if u.release != nil {
		// Re-arm the covered-alert prefilter once the unit is done (even on
		// a failed repair — the failed unit no longer covers anything).
		defer u.release()
	}
	defer func() {
		s.mu.Lock()
		s.executing = false
		s.mu.Unlock()
		if u.group != nil {
			s.unitGroupDone(u.group)
		}
	}()

	var err error
	switch {
	case s.cfg.Fault.SkipRepair:
		// Deliberate soundness fault (mutation smoke): consume the unit
		// without repairing anything. The accounting still runs so the
		// faulty service looks healthy from the outside — exactly the
		// failure the fuzzing oracles must catch.
		s.mu.Lock()
		s.metrics.UnitsExecuted++
		s.mu.Unlock()
		s.o.units.Inc()
	case s.wal != nil:
		err = s.executeDurable(u)
	case s.cfg.Strict:
		quiesceStart := time.Now()
		err = s.repairFullyQuiesced(u)
		s.observeQuiesce(quiesceStart, s.cfg.Shards)
	default:
		err = s.executePartial(u)
	}
	if err != nil {
		s.mu.Lock()
		s.metrics.RecoveryErrors++
		s.lastRecovery = fmt.Errorf("shard: recovery unit failed: %w", err)
		s.mu.Unlock()
	}
}

// executePartial is the §IV concurrent-recovery path: quiesce only the
// shards owning keys in the damage closure, repair the damaged components
// in parallel against an epoch-pinned snapshot, and merge the repaired
// chains into the live store. Clean shards keep committing past the pinned
// epoch throughout; the scoped repair never reads their chains.
//
// Soundness of the scoping is re-checked after the fact: if the repair's
// own damage closure escaped the quiesced key set (a footprint-bridging
// spec registered in the window between closure computation and the pause),
// the scoped result is discarded and the unit re-executes under full
// quiescence.
func (s *Service) executePartial(u *unit) error {
	dkeys := s.damageKeyClosure(u)
	paused := s.exec.beginRecovery(dkeys)
	quiesceStart := time.Now()

	// The damaged shards are drained: every commit in a damaged component
	// is at or below the epoch of the snapshot taken now. Specs are copied
	// after the pause for the same reason — a run is registered before its
	// first commit can land, so the copy covers every run the pinned log
	// prefix mentions.
	s.mu.Lock()
	specs := s.specsCopyLocked()
	s.mu.Unlock()
	g := s.graph.Snapshot()
	ropts := s.cfg.Repair
	ropts.ScopeToDamage = true
	ropts.Epoch = g.Epoch()
	if ropts.Parallel == 0 {
		ropts.Parallel = s.cfg.Shards
	}
	res, err := recovery.RepairGraph(g, s.eng.Store(), s.eng.Log(), specs, u.bad, ropts)

	if err == nil && coveredBy(res.DamagedKeys, dkeys) {
		err = s.com.exec(func() error { return s.installScoped(res, specs) })
		s.exec.endRecovery(paused)
		s.observeQuiesce(quiesceStart, len(paused))
		return err
	}
	s.exec.endRecovery(paused)
	s.observeQuiesce(quiesceStart, len(paused))
	if err != nil {
		return err
	}

	// Coverage violation: the damage reaches keys outside the quiesced
	// set. Redo the unit under full quiescence (always sound).
	s.exec.pauseAll()
	quiesceStart = time.Now()
	err = s.repairFullyQuiesced(u)
	s.observeQuiesce(quiesceStart, s.cfg.Shards)
	s.exec.resumeAll()
	return err
}

// repairFullyQuiesced repairs against the full log with every shard paused
// and swaps the repaired store in wholesale. Callers must hold all shards
// quiesced (Strict gating, or the executePartial fallback).
func (s *Service) repairFullyQuiesced(u *unit) error {
	s.mu.Lock()
	specs := s.specsCopyLocked()
	s.mu.Unlock()
	ropts := s.cfg.Repair
	if ropts.Parallel == 0 {
		ropts.Parallel = s.cfg.Shards
	}
	return s.com.exec(func() error {
		res, err := recovery.RepairGraph(s.graph.Snapshot(), s.eng.Store(), s.eng.Log(), specs, u.bad, ropts)
		if err != nil {
			return err
		}
		s.eng.SwapStore(res.Store)
		if _, err := s.resyncActive(res, specs); err != nil {
			return err
		}
		s.recordRepairStats(res)
		return nil
	})
}

// installScoped merges a scoped repair's damaged chains into the live store
// and resyncs the affected runs. Runs inside com.exec: exclusive with every
// group commit, so clean shards observe either the pre- or post-repair
// chains, never a torn mix.
func (s *Service) installScoped(res *recovery.Result, specs map[string]*wf.Spec) error {
	s.eng.Store().AdoptChains(res.Store, res.DamagedKeys)
	if _, err := s.resyncActive(res, specs); err != nil {
		return err
	}
	s.recordRepairStats(res)
	return nil
}

// resyncActive moves every in-flight run the repair rewrote onto its
// corrected frontier. A scoped repair produces schedule actions only for
// damaged-component runs, whose owning shards are paused — Frontier returns
// ok=false for every run on a still-stepping shard, which is only skipped.
// The returned frontiers feed the durable adopt record (ignored otherwise).
func (s *Service) resyncActive(res *recovery.Result, specs map[string]*wf.Spec) ([]durable.RunFrontier, error) {
	var fronts []durable.RunFrontier
	for _, rs := range s.exec.activeRuns() {
		cur, done, ok := res.Frontier(rs.run.ID, specs[rs.run.ID])
		if !ok {
			continue
		}
		if e := s.eng.Resync(rs.run, cur, done); e != nil {
			return nil, fmt.Errorf("resync %s: %w", rs.run.ID, e)
		}
		fronts = append(fronts, durable.RunFrontier{Run: rs.run.ID, Cur: cur, Done: done})
	}
	return fronts, nil
}

func (s *Service) recordRepairStats(res *recovery.Result) {
	var audit []error
	if s.cfg.AuditRepairs {
		audit = recovery.AuditSchedule(res)
	}
	s.mu.Lock()
	s.metrics.UnitsExecuted++
	s.metrics.Undone += len(res.Undone)
	s.metrics.Redone += len(res.Redone)
	s.metrics.NewExecuted += len(res.NewExecuted)
	if len(audit) > 0 {
		s.metrics.AuditViolations += len(audit)
		s.lastAudit = fmt.Errorf("shard: repair schedule violates Theorem-3 orders: %w", audit[0])
	}
	s.mu.Unlock()
	s.o.units.Inc()
	s.o.undone.Add(int64(len(res.Undone)))
	s.o.redone.Add(int64(len(res.Redone)))
	s.o.newExec.Add(int64(len(res.NewExecuted)))
}

func (s *Service) observeQuiesce(start time.Time, shards int) {
	if s.o.enabled {
		s.o.quiesceSeconds.Observe(time.Since(start).Seconds())
		s.o.quiescedShards.Observe(float64(shards))
	}
}

// coveredBy reports whether every repaired key was inside the quiesced set.
func coveredBy(damaged []data.Key, dkeys map[data.Key]bool) bool {
	for _, k := range damaged {
		if !dkeys[k] {
			return false
		}
	}
	return true
}

// damageKeyClosure computes the §IV quiesce scope for a unit: the union of
// the key-footprint components containing any key an instance in the
// worst-case undo set read or wrote (recovery.DamageKeyClosure, shared with
// the cluster's partial-quiescence coordinator).
func (s *Service) damageKeyClosure(u *unit) map[data.Key]bool {
	s.mu.Lock()
	specs := s.specsCopyLocked()
	s.mu.Unlock()
	return recovery.DamageKeyClosure(s.eng.Log(), specs, u.an.WorstCaseUndo(), u.bad)
}
