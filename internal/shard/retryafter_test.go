package shard

import "testing"

// TestEstimateRetryAfterClamp pins the Retry-After estimator's contract:
// ceil(queued * secPerAlert) seconds, clamped to [1, 60] so a reporter
// neither hammers an almost-empty queue nor backs off for minutes.
func TestEstimateRetryAfterClamp(t *testing.T) {
	cases := []struct {
		queued int
		spa    float64
		want   int
	}{
		{0, DefaultDrainSecPerAlert, 1},      // empty queue still paces to the floor
		{1, 0.0, 1},                          // unmeasured drain rate: floor
		{1, DefaultDrainSecPerAlert, 1},      // 0.05s rounds up to the floor
		{40, DefaultDrainSecPerAlert, 2},     // 2.0s exact
		{41, DefaultDrainSecPerAlert, 3},     // 2.05s rounds up
		{100, 0.25, 25},                      // mid-range passes through
		{1200, DefaultDrainSecPerAlert, 60},  // 60s exact: at the ceiling
		{10000, DefaultDrainSecPerAlert, 60}, // 500s clamps to the ceiling
		{1, 3600, 60},                        // one pathological alert still clamps
		{-5, DefaultDrainSecPerAlert, 1},     // negative depth cannot underflow the floor
	}
	for _, c := range cases {
		if got := EstimateRetryAfter(c.queued, c.spa); got != c.want {
			t.Errorf("EstimateRetryAfter(%d, %g) = %d, want %d", c.queued, c.spa, got, c.want)
		}
	}
}
