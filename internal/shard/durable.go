// Durable service mode: the sharded self-healing service over a
// write-ahead log (internal/durable).
//
// NewDurable restores the complete system state — store, log suffix,
// dependence-graph frontier, registered specs, run frontiers, un-acked
// alerts — from the WAL directory's latest snapshot plus a
// snapshot-bounded parallel replay, then wires the service so every state
// transition is logged ahead of acknowledgement:
//
//   - committed entries ride the log's OnAppend hook into the WAL, and the
//     commit pipeline's sync hook blocks each acknowledgement on the
//     group-commit fsync (one fsync per batch, not per entry);
//   - run registrations write a spec record (with the initial values
//     actually seeded) before the run is placed, so a replayed entry never
//     references an unregistered run;
//   - admitted alerts write an alert record before queueing and an ack
//     record only after every recovery unit of their batch completed, so a
//     crash mid-repair re-queues the batch and re-runs the idempotent
//     repair;
//   - repair installations write an adopt record (replacement chains +
//     resynced frontiers) inside the commit pipeline — repairs produce no
//     log entries, so the record is the only durable trace of the rewrite.
//
// Checkpoints (Service.Checkpoint, or automatic via Config.SnapshotEvery)
// quiesce the shards briefly, capture a Snapshot through the commit
// pipeline, write it, and compact the store at the snapshot epoch; the WAL
// retires every segment the snapshot covers. See docs/DURABILITY.md.
package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/deps"
	"selfheal/internal/durable"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/triage"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// NewDurable builds a sharded service backed by the WAL directory dir,
// restoring any state a previous process persisted there. Call Start to
// spin up the workers (restored active runs resume stepping, restored
// pending alerts re-enter triage) and Stop to flush and close the WAL.
func NewDurable(cfg Config, dir string, dopts durable.Options) (*Service, error) {
	cfg = cfg.withDefaults()
	wal, st, err := durable.Open(dir, dopts)
	if err != nil {
		return nil, err
	}
	eng := engine.New(st.Store, st.Log)
	s := &Service{
		cfg: cfg,
		eng: eng,
		// The graph resumes from the snapshot frontier and folds only the
		// restored log suffix (the OnAppend catch-up), not the full
		// history.
		graph:          deps.NewIncrementalFrom(st.Log, st.Graph),
		com:            newCommitter(eng, cfg.BatchMax, cfg.CommitQueue),
		specs:          make(map[string]*wf.Spec, len(st.Workflows)),
		alerts:         make(chan alert, cfg.AlertBuf),
		cover:          triage.NewCoverage(),
		pendingKeys:    make(map[string]int),
		stopCh:         make(chan struct{}),
		wal:            wal,
		liveAlerts:     make(map[uint64][]wlog.InstanceID, len(st.Alerts)),
		specStates:     make(map[string]durable.SpecState, len(st.Specs)),
		preEpoch:       st.PreEpoch,
		durableEpoch:   st.Epoch,
		restoredAlerts: st.Alerts,
		ckptCh:         make(chan chan error),
	}
	// Attach the WAL after the graph: OnAppend hooks run in subscription
	// order, and the graph must observe an entry before its record can be
	// flushed (the graph is snapshot state; the WAL record is its replay).
	wal.AttachLog(st.Log)
	s.com.sync = wal.Sync
	s.exec = newExecutor(eng, s.com, cfg.Shards, cfg.Inbox, cfg.DeferMax)

	for id, sp := range st.Workflows {
		s.specs[id] = sp
	}
	for id, ss := range st.Specs {
		s.specStates[id] = ss
	}
	for _, pa := range st.Alerts {
		s.liveAlerts[pa.ID] = pa.Bad
	}

	ids := make([]string, 0, len(st.Runs))
	for id := range st.Runs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var resume []*runState
	for _, id := range ids {
		rs := st.Runs[id]
		spec := st.Workflows[id]
		if spec == nil {
			_ = wal.Close()
			return nil, fmt.Errorf("shard: restored run %s has no spec", id)
		}
		status := RunActive
		switch rs.Status {
		case durable.RunDone:
			status = RunDone
		case durable.RunFailed:
			status = RunFailed
		}
		r, err := eng.RestoreRun(id, spec, rs.Cur, rs.Visits, status == RunDone, status == RunFailed)
		if err != nil {
			_ = wal.Close()
			return nil, fmt.Errorf("shard: restoring run %s: %w", id, err)
		}
		if placed := s.exec.adoptRestored(r, spec, status, rs.Err); placed != nil {
			resume = append(resume, placed)
		}
		s.metrics.RunsSubmitted++
	}
	// Deliveries sit in the (buffered) inboxes until Start spins the
	// workers up.
	s.exec.deliver(resume)
	return s, nil
}

// ReplayStats reports the cost of the boot-time restore: how many WAL
// records were replayed past the snapshot and how long the restore took.
func (s *Service) ReplayStats() (records int, d time.Duration) {
	if s.wal == nil {
		return 0, 0
	}
	return s.wal.Replayed()
}

// SubmitRunSpec registers a workflow run from its wfjson document — the
// durable submission path (POST /api/v1/runs). The spec record (including
// the initial store values actually seeded) is written and synced before
// the run is placed, so the registration survives any crash that could
// have produced entries for the run. On a non-durable service it degrades
// to init seeding plus SubmitRun. Errors wrap engine.ErrBadSpec,
// engine.ErrRunExists or ErrQueueFull.
func (s *Service) SubmitRunSpec(id string, sj *wfjson.SpecJSON) error {
	spec, init, err := wfjson.Build(sj)
	if err != nil {
		return fmt.Errorf("shard: run %s spec: %w: %w", id, engine.ErrBadSpec, err)
	}
	if s.wal == nil {
		// Seed declared initial values through the commit pipeline (first
		// writer wins): exclusive with group commits, so a concurrent
		// commit can never slip a version under the Init.
		store := s.Store()
		if err := s.com.exec(func() error {
			for k, v := range init {
				if _, ok := store.Get(k); !ok {
					store.Init(k, v)
				}
			}
			return nil
		}); err != nil {
			return err
		}
		return s.SubmitRun(id, spec)
	}

	// submitMu serializes durable submissions against each other and
	// against checkpoints: between the admission pre-check and the actual
	// submit, conflicts only shrink, and a snapshot never lands between
	// the spec record and the run's registration.
	s.submitMu.Lock()
	defer s.submitMu.Unlock()

	s.mu.Lock()
	if _, dup := s.specs[id]; dup {
		s.mu.Unlock()
		return fmt.Errorf("shard: run %s: %w", id, engine.ErrRunExists)
	}
	s.mu.Unlock()
	if !s.exec.canAdmit(footprint(spec)) {
		return fmt.Errorf("shard: run %s conflicts across shards and the deferred queue is full: %w", id, ErrQueueFull)
	}
	doc, err := json.Marshal(sj)
	if err != nil {
		return fmt.Errorf("shard: run %s spec: %w: %w", id, engine.ErrBadSpec, err)
	}

	// Seed inits exclusively with commits, recording the applied subset —
	// the spec record must replay exactly the Inits that happened, not the
	// ones the document declares (a key may already have committed
	// history).
	applied := make(map[data.Key]data.Value)
	store := s.Store()
	if err := s.com.exec(func() error {
		for k, v := range init {
			if _, ok := store.Get(k); !ok {
				store.Init(k, v)
				applied[k] = v
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := s.wal.AppendSpec(id, doc, applied); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}

	s.mu.Lock()
	s.specs[id] = spec
	s.specStates[id] = durable.SpecState{JSON: doc, Init: applied}
	s.mu.Unlock()
	if err := s.exec.submit(id, spec); err != nil {
		// Unreachable in practice: duplicates and queue capacity were
		// checked under submitMu. Unregister so the in-memory maps stay
		// consistent; the orphaned spec record restores an idle run.
		s.mu.Lock()
		delete(s.specs, id)
		delete(s.specStates, id)
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	s.metrics.RunsSubmitted++
	s.mu.Unlock()
	return nil
}

// Checkpoint forces a durable snapshot now: shards quiesce briefly while
// the state is captured, the snapshot file is written and synced, the
// store is compacted at the snapshot epoch and covered WAL segments are
// retired. Returns an error on a non-durable service.
func (s *Service) Checkpoint(ctx context.Context) error {
	if s.wal == nil {
		return fmt.Errorf("shard: service has no durable WAL")
	}
	resp := make(chan error, 1)
	select {
	case s.ckptCh <- resp:
	case <-ctx.Done():
		return ctx.Err()
	case <-s.stopCh:
		return durable.ErrClosed
	}
	select {
	case err := <-resp:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// checkpoint runs on the recovery goroutine (never concurrent with a
// repair): quiesce, capture, write, compact.
func (s *Service) checkpoint() error {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()

	s.mu.Lock()
	held := s.gateHeld
	s.mu.Unlock()
	if !held {
		s.exec.pauseAll()
	}
	var snap *durable.Snapshot
	err := s.com.exec(func() error {
		snap = s.gatherSnapshot()
		return nil
	})
	if !held {
		s.exec.resumeAll()
	}
	if err != nil {
		// The committer's sync hook failed: records at or below the
		// captured Seq are not known durable, so the snapshot must not
		// claim to cover them.
		return err
	}
	if err := s.wal.WriteSnapshot(snap); err != nil {
		return err
	}
	// Only after the snapshot is durable may the store forget the history
	// it covers. CompactBefore keeps the latest version at or below the
	// horizon as a checkpoint version — repairs of post-epoch damage still
	// read correct pre-state values.
	if err := s.com.exec(func() error {
		s.eng.Store().CompactBefore(float64(snap.Epoch))
		return nil
	}); err != nil {
		return err
	}
	s.mu.Lock()
	s.durableEpoch = snap.Epoch
	s.mu.Unlock()
	return nil
}

// gatherSnapshot captures the full system state. Runs on the committer
// goroutine with every shard quiesced and submitMu held: no commit, spec
// record or frontier mutation is in flight. Alert records are the one
// concurrent writer, so Seq and the live-alert set are captured together
// under alertMu — an alert admitted after the capture has a record beyond
// Seq and replays from the log.
func (s *Service) gatherSnapshot() *durable.Snapshot {
	snap := &durable.Snapshot{
		Epoch:  s.eng.Log().Len(),
		Chains: s.eng.Store().ChainsCopy(),
		Graph:  s.graph.Frontier(),
		Specs:  make(map[string]durable.SpecState),
		Runs:   s.exec.runSnapshots(),
	}
	s.mu.Lock()
	for id, ss := range s.specStates {
		snap.Specs[id] = ss
	}
	s.mu.Unlock()
	s.alertMu.Lock()
	snap.Seq = s.wal.Seq()
	snap.Alerts = make(map[uint64][]wlog.InstanceID, len(s.liveAlerts))
	for id, bad := range s.liveAlerts {
		snap.Alerts[id] = append([]wlog.InstanceID(nil), bad...)
	}
	s.alertMu.Unlock()
	return snap
}

// snapshotLoop drives automatic checkpoints: once SnapshotEvery entries
// have committed past the latest snapshot, a checkpoint request is queued
// to the recovery goroutine.
func (s *Service) snapshotLoop() {
	defer s.wg.Done()
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
		}
		if s.wal.EntriesSinceSnapshot() < s.cfg.SnapshotEvery {
			continue
		}
		resp := make(chan error, 1)
		select {
		case s.ckptCh <- resp:
		case <-s.stopCh:
			return
		}
		select {
		case err := <-resp:
			if err != nil {
				s.mu.Lock()
				s.lastRecovery = fmt.Errorf("shard: checkpoint failed: %w", err)
				s.mu.Unlock()
			}
		case <-s.stopCh:
			return
		}
	}
}

// feedRestoredAlerts re-queues the alerts a previous process admitted but
// never acked. Alerts naming instances before the snapshot horizon cannot
// be analyzed against the truncated log: they are acked and counted lost.
func (s *Service) feedRestoredAlerts() {
	defer s.wg.Done()
	for _, pa := range s.restoredAlerts {
		valid := true
		for _, id := range pa.Bad {
			if _, ok := s.eng.Log().Get(id); !ok {
				valid = false
				break
			}
		}
		if !valid {
			s.mu.Lock()
			s.metrics.AlertsLost++
			s.mu.Unlock()
			s.o.lost.Inc()
			s.ackAlerts([]uint64{pa.ID})
			continue
		}
		for {
			s.mu.Lock()
			if len(s.alerts) < cap(s.alerts) {
				s.alerts <- alert{bad: pa.Bad, walID: pa.ID}
				s.alertsQueued++
				s.metrics.AlertsReported++
				s.o.alertDepth.Set(int64(s.alertsQueued))
				s.mu.Unlock()
				s.o.reported.Inc()
				break
			}
			s.mu.Unlock()
			select {
			case <-s.stopCh:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}
}

// unitGroupDone retires one unit from its alert batch's ack group and
// writes the ack record when the whole batch has completed.
func (s *Service) unitGroupDone(g *ackGroup) {
	s.alertMu.Lock()
	g.remaining--
	done := g.remaining == 0
	s.alertMu.Unlock()
	if done {
		s.ackAlerts(g.ids)
	}
}

// ackAlerts marks alert IDs repaired: dropped from the live set and logged
// as an ack record. The record is not synced — losing it only re-runs an
// idempotent repair after a crash.
func (s *Service) ackAlerts(ids []uint64) {
	s.alertMu.Lock()
	defer s.alertMu.Unlock()
	for _, id := range ids {
		delete(s.liveAlerts, id)
	}
	// A write failure here is deliberately ignored: the WAL error is
	// sticky and surfaces on the next commit acknowledgement.
	_ = s.wal.AppendAck(ids)
}

// executeDurable is the durable repair path: always damage-scoped (a
// whole-store swap has no WAL representation), installed via AdoptChains
// plus an adopt record, and refused with recovery.ErrHorizon when the
// repair would need history the snapshot horizon truncated.
func (s *Service) executeDurable(u *unit) error {
	dkeys := s.damageKeyClosure(u)
	s.mu.Lock()
	specs := s.specsCopyLocked()
	epoch := s.durableEpoch
	pre := s.preEpoch
	s.mu.Unlock()

	// Boot-horizon refusal: a repair whose damage closure touches a run
	// with pre-snapshot commits would resync that run against a truncated
	// trace (wrong visit counters, invisible early writes). Refuse loudly
	// rather than install a silently wrong repair. Retired runs whose
	// entries all sit beneath the snapshot are exempt: they are frozen
	// history, never replayed or resynced — their surviving effect is the
	// checkpoint boundary versions, which post-snapshot repairs expose by
	// undoing the damage layered on top.
	for run := range pre {
		sp := specs[run]
		if sp == nil {
			continue
		}
		if s.runFrozen(run) {
			continue
		}
		for _, k := range recovery.Footprint(sp) {
			if dkeys[k] {
				return fmt.Errorf("shard: damage closure reaches run %s with history before the boot snapshot (epoch %d): %w",
					run, epoch, recovery.ErrHorizon)
			}
		}
	}

	gateHeld := s.cfg.Strict // handleBatch already quiesced every shard
	var paused []int
	if !gateHeld {
		paused = s.exec.beginRecovery(dkeys)
	}
	quiesceStart := time.Now()
	g := s.graph.Snapshot()
	ropts := s.cfg.Repair
	ropts.ScopeToDamage = true
	ropts.Epoch = g.Epoch()
	// Defense in depth: the store was compacted at the checkpoint epoch;
	// an undo that needs an older version fails with ErrHorizon instead of
	// misattributing the missing history to an earlier repair.
	ropts.CompactionHorizon = float64(epoch)
	if ropts.Parallel == 0 {
		ropts.Parallel = s.cfg.Shards
	}
	res, err := recovery.RepairGraph(g, s.eng.Store(), s.eng.Log(), specs, u.bad, ropts)
	if err == nil && (gateHeld || coveredBy(res.DamagedKeys, dkeys)) {
		err = s.com.exec(func() error { return s.installDurable(res, specs) })
		if gateHeld {
			s.observeQuiesce(quiesceStart, s.cfg.Shards)
		} else {
			s.exec.endRecovery(paused)
			s.observeQuiesce(quiesceStart, len(paused))
		}
		return err
	}
	if !gateHeld {
		s.exec.endRecovery(paused)
		s.observeQuiesce(quiesceStart, len(paused))
	}
	if err != nil {
		return err
	}

	// Coverage violation: the damage escaped the quiesced key set. Redo
	// under full quiescence — still damage-scoped, so the installation
	// keeps its adopt record.
	s.exec.pauseAll()
	quiesceStart = time.Now()
	g = s.graph.Snapshot()
	ropts.Epoch = g.Epoch()
	res, err = recovery.RepairGraph(g, s.eng.Store(), s.eng.Log(), specs, u.bad, ropts)
	if err == nil {
		err = s.com.exec(func() error { return s.installDurable(res, specs) })
	}
	s.observeQuiesce(quiesceStart, s.cfg.Shards)
	s.exec.resumeAll()
	return err
}

// runFrozen reports whether run is retired with no log entries above the
// snapshot horizon: frozen history whose only surviving effect is the
// checkpoint boundary versions. Such runs are never replayed or resynced,
// so repairs touching their key footprints are sound.
func (s *Service) runFrozen(run string) bool {
	x := s.exec
	x.mu.Lock()
	rs, ok := x.runs[run]
	x.mu.Unlock()
	if !ok || (rs.state != RunDone && rs.state != RunFailed) {
		return false
	}
	return len(s.eng.Log().Trace(run, false)) == 0
}

// installDurable merges a scoped repair into the live store and writes the
// adopt record: the replacement chain of every damaged key (nil = deleted)
// plus the resynced run frontiers. Runs inside com.exec, so the record
// lands before any later commit's entry record and the pipeline's sync
// hook makes it durable before the unit completes.
func (s *Service) installDurable(res *recovery.Result, specs map[string]*wf.Spec) error {
	s.eng.Store().AdoptChains(res.Store, res.DamagedKeys)
	fronts, err := s.resyncActive(res, specs)
	if err != nil {
		return err
	}
	chains := make(map[data.Key][]data.Version, len(res.DamagedKeys))
	for _, k := range res.DamagedKeys {
		chains[k] = res.Store.Chain(k)
	}
	if err := s.wal.AppendAdopt(fronts, chains); err != nil {
		return err
	}
	s.recordRepairStats(res)
	return nil
}
