// Package stg builds the state-transition graph of the attack recovery
// system (Fig 3 of the paper) and exposes the derived CTMC together with the
// paper's metrics: loss probability (Definition 3), ε-convergence
// (Definition 4), the NORMAL/SCAN/RECOVERY occupancy split, and expected
// queue lengths.
//
// A state is a pair (a, r): a IDS alerts queued, r units of recovery tasks
// queued. The transition rules follow §IV.C–E:
//
//   - Alert arrival, rate λ: (a, r) → (a+1, r) while a < AlertBuf; arrivals
//     in states with a = AlertBuf are lost (the right edge of the STG).
//   - Scan (the analyzer turns one alert into one unit of recovery tasks),
//     rate μ_a = F(μ₁, a): (a, r) → (a−1, r+1) while a > 0 and
//     r < RecoveryBuf. The rate index is the analyzer's own queue length
//     (§IV.D: processing time grows with the number of queued items).
//   - Recovery execution, rate ξ_r = G(ξ₁, r): (0, r) → (0, r−1) while
//     r > 0 — recovery tasks do not execute in SCAN states (§IV.C).
//   - Drain: when the recovery buffer is full the analyzer is blocked
//     (§IV.E), and the scheduler executes recovery tasks even though alerts
//     are queued: (a, RecoveryBuf) → (a, RecoveryBuf−1) at rate
//     ξ_{RecoveryBuf}. The paper's prose leaves this corner implicit; without
//     it the state (AlertBuf, RecoveryBuf) would be absorbing and every
//     steady state would have loss probability 1, contradicting §V. See
//     DESIGN.md ("STG deadlock completion").
package stg

import (
	"fmt"
	"math"

	"selfheal/internal/ctmc"
	"selfheal/internal/mat"
)

// Degradation maps the base rate and the queue-length index k (1-based) to
// the effective processing rate: the paper's f(μ₁, k) and g(ξ₁, k).
type Degradation func(base float64, k int) float64

// Degradation families used across the paper's Figure 4 panels.
var (
	// DegradeNone keeps the rate constant: no performance degradation.
	DegradeNone Degradation = func(base float64, _ int) float64 { return base }
	// DegradeSqrt divides by √k: slow degradation (Fig 4(a) regime).
	DegradeSqrt Degradation = func(base float64, k int) float64 { return base / math.Sqrt(float64(k)) }
	// DegradeLinear divides by k: the μ_k = μ₁/k of §V.A.2.
	DegradeLinear Degradation = func(base float64, k int) float64 { return base / float64(k) }
	// DegradeQuad divides by k²: fast degradation (Fig 4(c) regime).
	DegradeQuad Degradation = func(base float64, k int) float64 { return base / float64(k*k) }
)

// DegradationByName resolves a family name used by the CLI tools.
func DegradationByName(name string) (Degradation, error) {
	switch name {
	case "none":
		return DegradeNone, nil
	case "sqrt":
		return DegradeSqrt, nil
	case "linear":
		return DegradeLinear, nil
	case "quad", "quadratic":
		return DegradeQuad, nil
	default:
		return nil, fmt.Errorf("stg: unknown degradation family %q (want none, sqrt, linear, quad)", name)
	}
}

// Params configures the recovery-system model.
type Params struct {
	// Lambda is the IDS-alert arrival rate λ.
	Lambda float64
	// Mu1 is the alert-analysis rate μ₁ with one item queued.
	Mu1 float64
	// Xi1 is the recovery-execution rate ξ₁ with one unit queued.
	Xi1 float64
	// AlertBuf is the IDS-alert buffer size (columns of the STG).
	AlertBuf int
	// RecoveryBuf is the recovery-task buffer size (rows of the STG).
	RecoveryBuf int
	// F degrades μ with the recovery-queue length; nil means linear.
	F Degradation
	// G degrades ξ with the recovery-queue length; nil means linear.
	G Degradation
}

// Square returns the n-rows-by-n-columns parameterization of §IV.E with the
// linear degradation of §V.A.2.
func Square(lambda, mu1, xi1 float64, n int) Params {
	return Params{Lambda: lambda, Mu1: mu1, Xi1: xi1, AlertBuf: n, RecoveryBuf: n}
}

// State is one node of the STG.
type State struct {
	// Alerts is the number of queued IDS alerts.
	Alerts int
	// Recovery is the number of queued recovery-task units.
	Recovery int
}

// Class is the paper's three-way state classification (§IV.C).
type Class int

// State classes.
const (
	Normal Class = iota
	Scan
	Recovery
)

func (c Class) String() string {
	switch c {
	case Normal:
		return "NORMAL"
	case Scan:
		return "SCAN"
	case Recovery:
		return "RECOVERY"
	default:
		return "unknown"
	}
}

// Classify returns the class of a state: NORMAL is (0,0), SCAN has alerts
// queued, RECOVERY has only recovery units queued.
func (s State) Classify() Class {
	switch {
	case s.Alerts > 0:
		return Scan
	case s.Recovery > 0:
		return Recovery
	default:
		return Normal
	}
}

// Model is the recovery-system STG with its derived CTMC.
type Model struct {
	p      Params
	states []State
	chain  *ctmc.Chain
}

// New validates the parameters and builds the model.
func New(p Params) (*Model, error) {
	if p.Lambda < 0 || p.Mu1 <= 0 || p.Xi1 <= 0 {
		return nil, fmt.Errorf("stg: rates must be positive (λ≥0), got λ=%g μ₁=%g ξ₁=%g", p.Lambda, p.Mu1, p.Xi1)
	}
	if p.AlertBuf < 1 || p.RecoveryBuf < 1 {
		return nil, fmt.Errorf("stg: buffer sizes must be ≥1, got alerts=%d recovery=%d", p.AlertBuf, p.RecoveryBuf)
	}
	if p.F == nil {
		p.F = DegradeLinear
	}
	if p.G == nil {
		p.G = DegradeLinear
	}
	m := &Model{p: p}
	for a := 0; a <= p.AlertBuf; a++ {
		for r := 0; r <= p.RecoveryBuf; r++ {
			m.states = append(m.states, State{Alerts: a, Recovery: r})
		}
	}
	n := len(m.states)
	q := mat.NewDense(n, n)
	add := func(from, to int, rate float64) {
		if rate <= 0 {
			return
		}
		q.Add(from, to, rate)
		q.Add(from, from, -rate)
	}
	for i, s := range m.states {
		// Arrival.
		if s.Alerts < p.AlertBuf {
			add(i, m.Index(s.Alerts+1, s.Recovery), p.Lambda)
		}
		// Scan.
		if s.Alerts > 0 && s.Recovery < p.RecoveryBuf {
			add(i, m.Index(s.Alerts-1, s.Recovery+1), p.F(p.Mu1, s.Alerts))
		}
		// Recovery execution: only in RECOVERY states — or as the
		// forced drain when the recovery buffer is full.
		if s.Recovery > 0 && (s.Alerts == 0 || s.Recovery == p.RecoveryBuf) {
			add(i, m.Index(s.Alerts, s.Recovery-1), p.G(p.Xi1, s.Recovery))
		}
	}
	chain, err := ctmc.New(q)
	if err != nil {
		return nil, fmt.Errorf("stg: %w", err)
	}
	m.chain = chain
	return m, nil
}

// Params returns the model's parameters (with defaults applied).
func (m *Model) Params() Params { return m.p }

// N returns the number of STG states.
func (m *Model) N() int { return len(m.states) }

// States returns the states in index order.
func (m *Model) States() []State { return append([]State(nil), m.states...) }

// Index maps (alerts, recovery) to the state index.
func (m *Model) Index(alerts, recovery int) int {
	if alerts < 0 || alerts > m.p.AlertBuf || recovery < 0 || recovery > m.p.RecoveryBuf {
		panic(fmt.Sprintf("stg: state (%d,%d) out of range", alerts, recovery))
	}
	return alerts*(m.p.RecoveryBuf+1) + recovery
}

// Chain returns the derived CTMC.
func (m *Model) Chain() *ctmc.Chain { return m.chain }

// InitialNormal returns the distribution concentrated on the NORMAL state.
func (m *Model) InitialNormal() []float64 {
	pi := make([]float64, len(m.states))
	pi[m.Index(0, 0)] = 1
	return pi
}

// SteadyState solves Equation 1 for the model.
func (m *Model) SteadyState() ([]float64, error) {
	return m.chain.SteadyState()
}

// Metrics are the paper's observables for one state distribution.
type Metrics struct {
	// PNormal, PScan, PRecovery is the class occupancy split.
	PNormal, PScan, PRecovery float64
	// Loss is Definition 3's loss probability: mass on the right edge of
	// the STG (alert buffer full, arrivals lost).
	Loss float64
	// RecoveryFull is the mass on states with a full recovery-task
	// buffer (the condition that blocks the analyzer, §IV.E).
	RecoveryFull float64
	// EAlerts and ERecovery are the expected queue lengths.
	EAlerts, ERecovery float64
}

// MetricsOf computes the observables of a distribution over the STG states.
func (m *Model) MetricsOf(pi []float64) Metrics {
	if len(pi) != len(m.states) {
		panic(fmt.Sprintf("stg: distribution length %d != %d states", len(pi), len(m.states)))
	}
	var out Metrics
	for i, s := range m.states {
		p := pi[i]
		switch s.Classify() {
		case Normal:
			out.PNormal += p
		case Scan:
			out.PScan += p
		case Recovery:
			out.PRecovery += p
		}
		if s.Alerts == m.p.AlertBuf {
			out.Loss += p
		}
		if s.Recovery == m.p.RecoveryBuf {
			out.RecoveryFull += p
		}
		out.EAlerts += float64(s.Alerts) * p
		out.ERecovery += float64(s.Recovery) * p
	}
	return out
}

// SteadyMetrics solves the steady state and returns its metrics.
func (m *Model) SteadyMetrics() (Metrics, error) {
	pi, err := m.SteadyState()
	if err != nil {
		return Metrics{}, err
	}
	return m.MetricsOf(pi), nil
}

// LossProbability is Definition 3 for an explicit distribution.
func (m *Model) LossProbability(pi []float64) float64 {
	return m.MetricsOf(pi).Loss
}

// EpsilonConvergence returns the ε of Definition 4: the steady-state loss
// probability.
func (m *Model) EpsilonConvergence() (float64, error) {
	met, err := m.SteadyMetrics()
	if err != nil {
		return 0, err
	}
	return met.Loss, nil
}

// MeanTimeToLoss returns the expected time, starting from the NORMAL state,
// until the system first reaches the right edge of the STG (alert buffer
// full — the first moment an arriving alert would be lost). This is the
// exact formalization of the paper's Case 6 question "how long the system
// can resist a specific high attacking rate". Lambda must be positive: a
// system without arrivals never reaches the edge.
func (m *Model) MeanTimeToLoss() (float64, error) {
	if m.p.Lambda <= 0 {
		return 0, fmt.Errorf("stg: mean time to loss undefined at λ=%g", m.p.Lambda)
	}
	target := make([]bool, len(m.states))
	for i, s := range m.states {
		target[i] = s.Alerts == m.p.AlertBuf
	}
	h, err := m.chain.MeanFirstPassage(target)
	if err != nil {
		return 0, err
	}
	return h[m.Index(0, 0)], nil
}

// Transient returns π(t) from the NORMAL state (Equation 2).
func (m *Model) Transient(t float64) ([]float64, error) {
	return m.chain.Transient(m.InitialNormal(), t, 1e-12)
}

// CumulativeTime returns l(t) from the NORMAL state (Equation 3).
func (m *Model) CumulativeTime(t float64) ([]float64, error) {
	return m.chain.CumulativeTime(m.InitialNormal(), t, 1e-12)
}
