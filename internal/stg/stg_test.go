package stg

import (
	"math"
	"testing"

	"selfheal/internal/mat"
)

func mustModel(t *testing.T, p Params) *Model {
	t.Helper()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Params{Lambda: 1, Mu1: 0, Xi1: 1, AlertBuf: 2, RecoveryBuf: 2}); err == nil {
		t.Error("μ₁=0 accepted")
	}
	if _, err := New(Params{Lambda: 1, Mu1: 1, Xi1: 1, AlertBuf: 0, RecoveryBuf: 2}); err == nil {
		t.Error("zero alert buffer accepted")
	}
	if _, err := New(Square(1, 15, 20, 4)); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestStateSpaceAndIndex(t *testing.T) {
	m := mustModel(t, Square(1, 15, 20, 3))
	if m.N() != 16 {
		t.Fatalf("N = %d, want 16 (4x4)", m.N())
	}
	states := m.States()
	for i, s := range states {
		if m.Index(s.Alerts, s.Recovery) != i {
			t.Errorf("index mismatch at %v", s)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		s    State
		want Class
	}{
		{State{0, 0}, Normal},
		{State{1, 0}, Scan},
		{State{3, 2}, Scan},
		{State{0, 1}, Recovery},
		{State{0, 5}, Recovery},
	}
	for _, c := range cases {
		if got := c.s.Classify(); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.s, got, c.want)
		}
	}
	if Normal.String() != "NORMAL" || Scan.String() != "SCAN" || Recovery.String() != "RECOVERY" {
		t.Error("class names wrong")
	}
}

func TestDegradationFamilies(t *testing.T) {
	if DegradeNone(10, 5) != 10 {
		t.Error("none degrades")
	}
	if math.Abs(DegradeSqrt(10, 4)-5) > 1e-12 {
		t.Error("sqrt(4) wrong")
	}
	if DegradeLinear(10, 5) != 2 {
		t.Error("linear wrong")
	}
	if DegradeQuad(10, 2) != 2.5 {
		t.Error("quad wrong")
	}
	for _, name := range []string{"none", "sqrt", "linear", "quad", "quadratic"} {
		if _, err := DegradationByName(name); err != nil {
			t.Errorf("family %q rejected: %v", name, err)
		}
	}
	if _, err := DegradationByName("cubic"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestSteadyStateIsDistribution(t *testing.T) {
	m := mustModel(t, Square(1, 15, 20, 10))
	pi, err := m.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mat.Sum(pi)-1) > 1e-9 {
		t.Errorf("Σπ = %g", mat.Sum(pi))
	}
	for i, p := range pi {
		if p < 0 {
			t.Errorf("π[%d] = %g < 0", i, p)
		}
	}
	met := m.MetricsOf(pi)
	if s := met.PNormal + met.PScan + met.PRecovery; math.Abs(s-1) > 1e-9 {
		t.Errorf("class split sums to %g", s)
	}
}

// TestGoodSystemSteadyState encodes the paper's Case 2 remark: with λ < 1,
// μ₁ = 15, ξ₁ = 20 and buffer 15 the system stays NORMAL with probability
// > 0.8 and the loss probability is very low.
func TestGoodSystemSteadyState(t *testing.T) {
	for _, lambda := range []float64{0.25, 0.5, 1} {
		m := mustModel(t, Square(lambda, 15, 20, 15))
		met, err := m.SteadyMetrics()
		if err != nil {
			t.Fatal(err)
		}
		if met.PNormal <= 0.8 {
			t.Errorf("λ=%g: P(NORMAL) = %g, want > 0.8", lambda, met.PNormal)
		}
		if met.Loss >= 0.01 {
			t.Errorf("λ=%g: loss = %g, want < 1%%", lambda, met.Loss)
		}
		if met.EAlerts >= 1 || met.ERecovery >= 1 {
			t.Errorf("λ=%g: E[alerts]=%g E[recovery]=%g, want < 1", lambda, met.EAlerts, met.ERecovery)
		}
	}
}

// TestOverloadedSystemSteadyState encodes the λ > 1.5 regime of Case 2: loss
// grows and the NORMAL probability collapses.
func TestOverloadedSystemSteadyState(t *testing.T) {
	m := mustModel(t, Square(4, 15, 20, 15))
	met, err := m.SteadyMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if met.PNormal >= 0.2 {
		t.Errorf("P(NORMAL) = %g under λ=4, want collapse", met.PNormal)
	}
	if met.Loss <= 0.3 {
		t.Errorf("loss = %g under λ=4, want large", met.Loss)
	}
	if met.RecoveryFull <= 0.3 {
		t.Errorf("recovery-queue-full mass = %g, want substantial", met.RecoveryFull)
	}
	// Case 2's remark: the recovery queue is pinned near full.
	if met.ERecovery <= 0.9*15 {
		t.Errorf("E[recovery] = %g, want near buffer size 15", met.ERecovery)
	}
}

// TestLossMonotoneInLambda: more attacks, more loss.
func TestLossMonotoneInLambda(t *testing.T) {
	prev := -1.0
	for _, lambda := range []float64{0.25, 0.5, 1, 1.5, 2, 3, 4} {
		m := mustModel(t, Square(lambda, 15, 20, 15))
		met, err := m.SteadyMetrics()
		if err != nil {
			t.Fatal(err)
		}
		if met.Loss < prev-1e-12 {
			t.Errorf("loss not monotone at λ=%g: %g < %g", lambda, met.Loss, prev)
		}
		prev = met.Loss
	}
}

// TestDegradationOrdering: faster degradation ⇒ at least as much loss, at a
// fixed buffer size.
func TestDegradationOrdering(t *testing.T) {
	families := []Degradation{DegradeNone, DegradeSqrt, DegradeLinear, DegradeQuad}
	prev := -1.0
	for i, fam := range families {
		p := Square(1, 15, 20, 12)
		p.F, p.G = fam, fam
		m := mustModel(t, p)
		met, err := m.SteadyMetrics()
		if err != nil {
			t.Fatal(err)
		}
		if met.Loss < prev-1e-12 {
			t.Errorf("family %d: loss %g below previous %g", i, met.Loss, prev)
		}
		prev = met.Loss
	}
}

// TestFig4Shapes encodes the Remark of §V.A.1: with slow degradation the
// loss probability keeps falling as the buffer grows; with fast degradation
// it reaches a minimum and then rises; degrading μ faster than ξ beats the
// contrary assignment.
func TestFig4Shapes(t *testing.T) {
	loss := func(f, g Degradation, buf int) float64 {
		p := Square(1, 15, 20, buf)
		p.F, p.G = f, g
		m := mustModel(t, p)
		met, err := m.SteadyMetrics()
		if err != nil {
			t.Fatal(err)
		}
		return met.Loss
	}

	// Slow degradation: monotone decreasing in buffer size.
	prev := math.Inf(1)
	for _, buf := range []int{2, 4, 8, 16, 30} {
		l := loss(DegradeSqrt, DegradeSqrt, buf)
		if l > prev+1e-12 {
			t.Errorf("sqrt family: loss rose from %g to %g at buf=%d", prev, l, buf)
		}
		prev = l
	}

	// Fast degradation: the large-buffer loss exceeds the best
	// small-buffer loss (the "too large queues hurt" effect).
	best := math.Inf(1)
	bestBuf := 0
	for buf := 2; buf <= 30; buf++ {
		if l := loss(DegradeQuad, DegradeQuad, buf); l < best {
			best, bestBuf = l, buf
		}
	}
	l30 := loss(DegradeQuad, DegradeQuad, 30)
	if !(bestBuf < 30 && l30 > best*1.05) {
		t.Errorf("quad family: no interior optimum (best %g at buf=%d, loss(30)=%g)", best, bestBuf, l30)
	}

	// μ degrading faster than ξ is better than the contrary (Fig 4(d) vs
	// its mirror) in the operating regime before saturation; at very
	// large buffers both saturate above 0.9 and the distinction vanishes.
	for _, buf := range []int{6, 8} {
		muFaster := loss(DegradeQuad, DegradeLinear, buf)
		xiFaster := loss(DegradeLinear, DegradeQuad, buf)
		if muFaster >= xiFaster {
			t.Errorf("buf=%d: μ-faster loss %g not better than ξ-faster %g", buf, muFaster, xiFaster)
		}
	}
	// And μ-faster strictly beats the symmetric fast case of Fig 4(c).
	if a, c := loss(DegradeQuad, DegradeLinear, 10), loss(DegradeQuad, DegradeQuad, 10); a >= c {
		t.Errorf("Fig 4(d) %g not better than Fig 4(c) %g", a, c)
	}
}

// TestCase6PoorSystemTransient encodes the paper's Case 6 (λ=1, μ₁=2, ξ₁=3,
// buffer 15): the system resists the overload for about 5 time units, then
// the loss probability climbs quickly (< 30 time units) and settles in the
// 0.9–1 range; most cumulative time is eventually spent at the right edge.
func TestCase6PoorSystemTransient(t *testing.T) {
	m := mustModel(t, Square(1, 2, 3, 15))
	at := func(tm float64) Metrics {
		pi, err := m.Transient(tm)
		if err != nil {
			t.Fatal(err)
		}
		return m.MetricsOf(pi)
	}
	if l := at(5).Loss; l >= 0.01 {
		t.Errorf("loss(5) = %g, want still negligible (≈5 units of resistance)", l)
	}
	if l := at(30).Loss; l <= 0.3 {
		t.Errorf("loss(30) = %g, want a fast climb", l)
	}
	m100 := at(100)
	if m100.Loss < 0.9 || m100.Loss > 1 {
		t.Errorf("loss(100) = %g, want in [0.9, 1]", m100.Loss)
	}
	if m100.PNormal > 0.001 {
		t.Errorf("P(NORMAL)(100) = %g, want ≈0 (100%% degradation)", m100.PNormal)
	}
	// Cumulative time at the right edge dominates the horizon.
	l, err := m.CumulativeTime(100)
	if err != nil {
		t.Fatal(err)
	}
	var edge float64
	for i, s := range m.States() {
		if s.Alerts == m.Params().AlertBuf {
			edge += l[i]
		}
	}
	if edge < 50 {
		t.Errorf("right-edge cumulative time = %g of 100, want the majority", edge)
	}
}

// TestCase5GoodSystemTransient encodes Case 5 (λ=1, μ₁=15, ξ₁=20): the
// system enters its steady state very quickly, keeps P(NORMAL) high and has
// an unnoticeable loss probability throughout the 4-unit horizon.
func TestCase5GoodSystemTransient(t *testing.T) {
	m := mustModel(t, Square(1, 15, 20, 15))
	ss, err := m.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	pi1, err := m.Transient(1)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.L1Dist(pi1, ss); d > 0.05 {
		t.Errorf("π(1) is %g away from steady state, want fast convergence", d)
	}
	for _, tm := range []float64{0.5, 1, 2, 4} {
		pi, err := m.Transient(tm)
		if err != nil {
			t.Fatal(err)
		}
		met := m.MetricsOf(pi)
		if met.Loss > 1e-6 {
			t.Errorf("loss(%g) = %g, want unnoticeable", tm, met.Loss)
		}
		if met.PNormal < 0.8 {
			t.Errorf("P(NORMAL)(%g) = %g, want > 0.8", tm, met.PNormal)
		}
	}
	// Most of the 4 units are spent executing normal tasks.
	l, err := m.CumulativeTime(4)
	if err != nil {
		t.Fatal(err)
	}
	if frac := l[m.Index(0, 0)] / 4; frac < 0.8 {
		t.Errorf("NORMAL cumulative share = %g, want > 0.8", frac)
	}
}

// TestTransientStartsNormalAndReachesSteady: Equation 2 from the NORMAL
// state converges to Equation 1's solution.
func TestTransientStartsNormalAndReachesSteady(t *testing.T) {
	m := mustModel(t, Square(1, 15, 20, 8))
	pi0, err := m.Transient(0)
	if err != nil {
		t.Fatal(err)
	}
	if pi0[m.Index(0, 0)] != 1 {
		t.Errorf("π(0) not concentrated on NORMAL: %v", pi0[m.Index(0, 0)])
	}
	long, err := m.Transient(500)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := m.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.L1Dist(long, ss); d > 1e-6 {
		t.Errorf("π(500) vs steady distance %g", d)
	}
}

// TestCumulativeTimeTotals: Σ l_i(t) = t, and the NORMAL share dominates for
// a good system.
func TestCumulativeTimeTotals(t *testing.T) {
	m := mustModel(t, Square(1, 15, 20, 8))
	const horizon = 4.0
	l, err := m.CumulativeTime(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mat.Sum(l)-horizon) > 1e-8 {
		t.Errorf("Σl = %g, want %g", mat.Sum(l), horizon)
	}
	if frac := l[m.Index(0, 0)] / horizon; frac < 0.75 {
		t.Errorf("NORMAL got %g of the time, want most of it", frac)
	}
}

// TestEpsilonConvergence: Definition 4 equals the steady-state loss.
func TestEpsilonConvergence(t *testing.T) {
	m := mustModel(t, Square(1, 15, 20, 15))
	eps, err := m.EpsilonConvergence()
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.SteadyMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if eps != met.Loss {
		t.Errorf("ε = %g, loss = %g", eps, met.Loss)
	}
}

// TestDrainRuleKeepsChainIrreducible: the corner state (AlertBuf,
// RecoveryBuf) must not be absorbing — the DESIGN.md deadlock completion.
func TestDrainRuleKeepsChainIrreducible(t *testing.T) {
	m := mustModel(t, Square(2, 3, 4, 3))
	q := m.Chain().Generator()
	corner := m.Index(3, 3)
	if q.At(corner, corner) >= 0 {
		t.Fatal("corner state is absorbing; drain rule missing")
	}
	// Drain target is (3, 2).
	if q.At(corner, m.Index(3, 2)) <= 0 {
		t.Error("corner does not drain to (alerts, recovery-1)")
	}
	// And the steady state must put nonzero mass on NORMAL (the chain
	// returns from the corner).
	met, err := m.SteadyMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if met.PNormal <= 0 {
		t.Error("steady state never returns to NORMAL")
	}
}

// TestNoScanWhenRecoveryFull: §IV.E — a full recovery buffer blocks the
// analyzer.
func TestNoScanWhenRecoveryFull(t *testing.T) {
	m := mustModel(t, Square(1, 15, 20, 3))
	q := m.Chain().Generator()
	from := m.Index(2, 3)
	// No transition (2,3) → (1, 4): index would panic; check instead that
	// the only outflows are arrival and drain.
	wantOut := map[int]bool{
		m.Index(3, 3): true, // arrival
		m.Index(2, 2): true, // drain
	}
	for j := 0; j < m.N(); j++ {
		if j == from {
			continue
		}
		if q.At(from, j) > 0 && !wantOut[j] {
			t.Errorf("unexpected transition from (2,3) to state %d (%v)", j, m.States()[j])
		}
	}
}

// TestNoRecoveryDuringScan: §IV.C — recovery tasks do not execute while
// alerts are queued (below the full-buffer drain).
func TestNoRecoveryDuringScan(t *testing.T) {
	m := mustModel(t, Square(1, 15, 20, 3))
	q := m.Chain().Generator()
	from := m.Index(2, 1) // SCAN with recovery queued, buffer not full
	if q.At(from, m.Index(2, 0)) > 0 {
		t.Error("recovery executed during SCAN")
	}
}

// TestMeanTimeToLoss formalizes Case 6's resistance question: the poor
// system under λ=1 first fills its alert buffer in the tens of time units;
// the good system's expected time to first loss is astronomically long; and
// a higher attack rate shortens the time.
func TestMeanTimeToLoss(t *testing.T) {
	poor := mustModel(t, Square(1, 2, 3, 15))
	tp, err := poor.MeanTimeToLoss()
	if err != nil {
		t.Fatal(err)
	}
	if tp < 5 || tp > 200 {
		t.Errorf("poor system mean time to loss = %g, want tens of units", tp)
	}
	good := mustModel(t, Square(1, 15, 20, 15))
	tg, err := good.MeanTimeToLoss()
	if err != nil {
		t.Fatal(err)
	}
	if tg < 1e3 {
		t.Errorf("good system mean time to loss = %g, want very large", tg)
	}
	faster := mustModel(t, Square(2, 2, 3, 15))
	tf, err := faster.MeanTimeToLoss()
	if err != nil {
		t.Fatal(err)
	}
	if tf >= tp {
		t.Errorf("doubling λ did not shorten time to loss: %g vs %g", tf, tp)
	}
	if _, err := mustModel(t, Params{Lambda: 0, Mu1: 1, Xi1: 1, AlertBuf: 2, RecoveryBuf: 2}).MeanTimeToLoss(); err == nil {
		t.Error("λ=0 accepted")
	}
}

// TestAsymmetricBuffers: AlertBuf ≠ RecoveryBuf is supported directly; the
// drain rule applies at the recovery buffer's own bound.
func TestAsymmetricBuffers(t *testing.T) {
	p := Params{Lambda: 1, Mu1: 15, Xi1: 20, AlertBuf: 6, RecoveryBuf: 3}
	m := mustModel(t, p)
	if m.N() != 7*4 {
		t.Fatalf("N = %d, want 28", m.N())
	}
	q := m.Chain().Generator()
	// Drain fires at r = 3 with alerts pending.
	from := m.Index(2, 3)
	if q.At(from, m.Index(2, 2)) <= 0 {
		t.Error("drain missing at asymmetric recovery bound")
	}
	// No scan beyond the recovery bound.
	met, err := m.SteadyMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if met.Loss < 0 || met.Loss > 1 {
		t.Errorf("loss = %g", met.Loss)
	}
	// Loss states are defined by the alert bound, not the recovery bound.
	pi, err := m.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	var edge float64
	for i, s := range m.States() {
		if s.Alerts == 6 {
			edge += pi[i]
		}
	}
	if diff := edge - met.Loss; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("loss %g != alert-edge mass %g", met.Loss, edge)
	}
}
