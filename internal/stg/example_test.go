package stg_test

import (
	"fmt"
	"log"

	"selfheal/internal/stg"
)

// Example solves the paper's Case 5 configuration: a healthy recovery
// system at λ=1 with μ₁=15, ξ₁=20 and buffer 15.
func Example() {
	m, err := stg.New(stg.Square(1, 15, 20, 15))
	if err != nil {
		log.Fatal(err)
	}
	met, err := m.SteadyMetrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(NORMAL) = %.2f\n", met.PNormal)
	fmt.Printf("loss probability = %.4f\n", met.Loss)
	// Output:
	// P(NORMAL) = 0.85
	// loss probability = 0.0064
}

// ExampleModel_Transient inspects the poor system of Case 6 after 100 time
// units of sustained overload.
func ExampleModel_Transient() {
	m, err := stg.New(stg.Square(1, 2, 3, 15))
	if err != nil {
		log.Fatal(err)
	}
	pi, err := m.Transient(100)
	if err != nil {
		log.Fatal(err)
	}
	met := m.MetricsOf(pi)
	fmt.Printf("loss probability after 100 units = %.2f\n", met.Loss)
	// Output:
	// loss probability after 100 units = 0.91
}

// ExampleModel_MeanTimeToLoss answers Case 6's resistance question exactly:
// how long until the first alert is expected to be lost.
func ExampleModel_MeanTimeToLoss() {
	m, err := stg.New(stg.Square(1, 2, 3, 15))
	if err != nil {
		log.Fatal(err)
	}
	mttl, err := m.MeanTimeToLoss()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected time to first lost alert = %.0f time units\n", mttl)
	// Output:
	// expected time to first lost alert = 27 time units
}
