package wf

import (
	"fmt"
	"sort"

	"selfheal/internal/data"
)

// Warning is a non-fatal specification finding from Lint.
type Warning struct {
	// Task is the task the finding concerns (empty for spec-level).
	Task TaskID
	// Msg describes the finding.
	Msg string
}

func (w Warning) String() string {
	if w.Task == "" {
		return w.Msg
	}
	return fmt.Sprintf("%s: %s", w.Task, w.Msg)
}

// Lint reports specification smells that Validate accepts but that weaken
// attack recovery or indicate design mistakes:
//
//   - a choice node that writes nothing: its branch decision cannot be
//     reconstructed from the store after compaction, and a corrupted
//     decision leaves no data trail (only the log's Chosen field);
//   - a task whose writes nobody reads and that is not an end node: dead
//     data that still inflates undo sets;
//   - a task reading a key no task writes (it reads only initial values);
//   - a cycle with no choice node inside it: the workflow can never leave
//     the loop.
func Lint(s *Spec) []Warning {
	var out []Warning
	if err := s.Validate(); err != nil {
		return []Warning{{Msg: fmt.Sprintf("invalid specification: %v", err)}}
	}

	writers := make(map[data.Key]bool)
	readers := make(map[data.Key]bool)
	for _, t := range s.Tasks {
		for _, k := range t.Writes {
			writers[k] = true
		}
		for _, k := range t.Reads {
			readers[k] = true
		}
	}

	ids := make([]TaskID, 0, len(s.Tasks))
	for id := range s.Tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		t := s.Tasks[id]
		if len(t.Next) > 1 && len(t.Writes) == 0 {
			out = append(out, Warning{Task: id,
				Msg: "choice node writes nothing: its decision leaves no data trail for recovery"})
		}
		if len(t.Next) > 0 {
			unread := true
			for _, k := range t.Writes {
				if readers[k] {
					unread = false
					break
				}
			}
			if unread && len(t.Writes) > 0 {
				out = append(out, Warning{Task: id,
					Msg: "writes are never read by any task: dead data that still inflates undo sets"})
			}
		}
		for _, k := range t.Reads {
			if !writers[k] {
				out = append(out, Warning{Task: id,
					Msg: fmt.Sprintf("reads %q, which no task writes (initial value only)", k)})
			}
		}
	}

	// Cycles without an interior choice node never terminate. Detect
	// strongly connected components of size > 1 (or self loops) whose
	// nodes are all single-successor.
	for _, comp := range sccs(s) {
		if len(comp) < 2 {
			continue
		}
		hasChoice := false
		for _, id := range comp {
			if len(s.Tasks[id].Next) > 1 {
				hasChoice = true
				break
			}
		}
		if !hasChoice {
			sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
			out = append(out, Warning{
				Msg: fmt.Sprintf("cycle %v has no choice node: the workflow can never leave it", comp),
			})
		}
	}
	return out
}

// sccs returns the strongly connected components of the workflow graph
// (Tarjan's algorithm, iterative bookkeeping via recursion over small specs).
func sccs(s *Spec) [][]TaskID {
	index := make(map[TaskID]int)
	low := make(map[TaskID]int)
	onStack := make(map[TaskID]bool)
	var stack []TaskID
	var out [][]TaskID
	next := 0

	var strong func(v TaskID)
	strong = func(v TaskID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range s.Tasks[v].Next {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []TaskID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	ids := make([]TaskID, 0, len(s.Tasks))
	for id := range s.Tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if _, seen := index[id]; !seen {
			strong(id)
		}
	}
	return out
}
