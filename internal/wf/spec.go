// Package wf defines the workflow model of §II of the paper: a workflow is a
// directed graph of tasks with one 0-indegree start node and 0-outdegree end
// nodes. A node with more than one outgoing edge is a choice (dominant) node
// that selects exactly one successor at run time — branches are alternative
// execution paths, not parallelism. Cycles are allowed; repeated visits to
// the same node are distinct task instances t_i^1, t_i^2, …
//
// The package also provides the static graph analyses the recovery theory
// needs: reachability, unavoidable nodes, and the control-dependence
// relation →_c with its transitive closure (§II.D).
package wf

import (
	"fmt"
	"sort"

	"selfheal/internal/data"
)

// TaskID names a task (a node of the workflow graph).
type TaskID string

// ComputeFunc derives the values a task writes from the values it reads.
// The returned map must assign a value to every key in the task's write set;
// missing keys default to 0. Deterministic compute functions are required
// for strict-correct recovery (redo must be able to reproduce clean results).
type ComputeFunc func(reads map[data.Key]data.Value) map[data.Key]data.Value

// ChooseFunc selects the successor of a choice node from the values the task
// read. It must return one of the node's declared successors.
type ChooseFunc func(reads map[data.Key]data.Value) TaskID

// Task is one node of a workflow specification.
type Task struct {
	// ID is the task's name, unique within the workflow.
	ID TaskID
	// Next lists the immediate successors. Empty for end nodes. A task
	// with more than one successor is a choice node and must set Choose.
	Next []TaskID
	// Reads and Writes are the task's static read and write sets.
	Reads, Writes []data.Key
	// Compute produces the task's writes; nil means "write zeros".
	Compute ComputeFunc
	// Choose picks the successor for choice nodes; nil otherwise.
	Choose ChooseFunc
}

// Spec is a complete workflow specification.
type Spec struct {
	// Name identifies the workflow.
	Name string
	// Start is the 0-indegree entry task.
	Start TaskID
	// Tasks maps IDs to task definitions.
	Tasks map[TaskID]*Task
}

// Validate checks the structural invariants of the specification: the start
// task exists and has no predecessors, every edge endpoint exists, choice
// nodes have Choose functions, non-choice nodes do not, every task is
// reachable from the start, and at least one end node is reachable.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("wf: workflow has no name")
	}
	if len(s.Tasks) == 0 {
		return fmt.Errorf("wf %s: no tasks", s.Name)
	}
	start, ok := s.Tasks[s.Start]
	if !ok {
		return fmt.Errorf("wf %s: start task %q not defined", s.Name, s.Start)
	}
	_ = start
	indeg := make(map[TaskID]int, len(s.Tasks))
	for id, t := range s.Tasks {
		if t == nil {
			return fmt.Errorf("wf %s: task %q is nil", s.Name, id)
		}
		if t.ID != id {
			return fmt.Errorf("wf %s: task map key %q != task ID %q", s.Name, id, t.ID)
		}
		seen := make(map[TaskID]bool, len(t.Next))
		for _, n := range t.Next {
			if _, ok := s.Tasks[n]; !ok {
				return fmt.Errorf("wf %s: task %q has edge to undefined task %q", s.Name, id, n)
			}
			if seen[n] {
				return fmt.Errorf("wf %s: task %q has duplicate edge to %q", s.Name, id, n)
			}
			seen[n] = true
			indeg[n]++
		}
		if len(t.Next) > 1 && t.Choose == nil {
			return fmt.Errorf("wf %s: choice task %q has no Choose function", s.Name, id)
		}
		if len(t.Next) <= 1 && t.Choose != nil {
			return fmt.Errorf("wf %s: non-choice task %q has a Choose function", s.Name, id)
		}
		for _, k := range append(append([]data.Key{}, t.Reads...), t.Writes...) {
			if k == "" {
				return fmt.Errorf("wf %s: task %q has an empty data key", s.Name, id)
			}
		}
	}
	if indeg[s.Start] != 0 {
		return fmt.Errorf("wf %s: start task %q has predecessors", s.Name, s.Start)
	}
	reach := s.ReachableFrom(s.Start)
	for id := range s.Tasks {
		if !reach[id] {
			return fmt.Errorf("wf %s: task %q unreachable from start", s.Name, id)
		}
	}
	if len(s.Ends()) == 0 {
		return fmt.Errorf("wf %s: no end (0-outdegree) task", s.Name)
	}
	return nil
}

// Ends returns the 0-outdegree tasks, sorted by ID.
func (s *Spec) Ends() []TaskID {
	var out []TaskID
	for id, t := range s.Tasks {
		if len(t.Next) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReachableFrom returns the set of tasks reachable from id, including id.
func (s *Spec) ReachableFrom(id TaskID) map[TaskID]bool {
	return s.reachableExcluding(id, "")
}

// reachableExcluding computes reachability from id while treating the task
// `excluded` as removed from the graph. An empty exclusion removes nothing.
func (s *Spec) reachableExcluding(id, excluded TaskID) map[TaskID]bool {
	seen := make(map[TaskID]bool)
	if id == excluded {
		return seen
	}
	stack := []TaskID{id}
	seen[id] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range s.Tasks[cur].Next {
			if n == excluded || seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, n)
		}
	}
	return seen
}

// canReachEndExcluding reports whether some end node is reachable from `from`
// when task `excluded` is removed from the graph.
func (s *Spec) canReachEndExcluding(from, excluded TaskID) bool {
	reach := s.reachableExcluding(from, excluded)
	for id := range reach {
		if len(s.Tasks[id].Next) == 0 {
			return true
		}
	}
	return false
}

// Unavoidable reports whether every execution path from the start to an end
// node passes through id (§II.D: an unavoidable node exists in all execution
// paths). The start node is always unavoidable.
func (s *Spec) Unavoidable(id TaskID) bool {
	if id == s.Start {
		return true
	}
	return !s.canReachEndExcluding(s.Start, id)
}

// ControlDep reports whether to is control dependent on from (from →_c to,
// §II.D): from is a choice node on a path to to, and to is avoidable from
// from — i.e. from can still complete the workflow without ever executing
// to. Dominant nodes are exactly the choice nodes whose decision determines
// whether to executes.
func (s *Spec) ControlDep(from, to TaskID) bool {
	f, ok := s.Tasks[from]
	if !ok || len(f.Next) <= 1 {
		return false
	}
	if from == to {
		return false
	}
	if !s.ReachableFrom(from)[to] {
		return false
	}
	// to is avoidable from from: some end remains reachable with to removed.
	return s.canReachEndExcluding(from, to)
}

// ControlClosure returns the transitive closure →_c* as a map from each
// choice node to the set of tasks transitively control dependent on it.
// The relation →_c is transitive per §II.D, and since every element of a
// →_c chain is itself directly control dependent on the head in this graph
// model, the closure equals the union of direct dependences reachable
// through intermediate choice nodes.
func (s *Spec) ControlClosure() map[TaskID]map[TaskID]bool {
	direct := make(map[TaskID]map[TaskID]bool)
	for from := range s.Tasks {
		if len(s.Tasks[from].Next) <= 1 {
			continue
		}
		set := make(map[TaskID]bool)
		for to := range s.Tasks {
			if s.ControlDep(from, to) {
				set[to] = true
			}
		}
		if len(set) > 0 {
			direct[from] = set
		}
	}
	// Transitive closure over the direct relation.
	changed := true
	for changed {
		changed = false
		for from, set := range direct {
			for mid := range set {
				for to := range direct[mid] {
					if !set[to] {
						set[to] = true
						changed = true
					}
				}
			}
			_ = from
		}
	}
	return direct
}

// ChoiceNodes returns the IDs of all choice (dominant) nodes, sorted.
func (s *Spec) ChoiceNodes() []TaskID {
	var out []TaskID
	for id, t := range s.Tasks {
		if len(t.Next) > 1 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Paths enumerates execution paths from the start to any end node, visiting
// no node more than maxVisits times (cycles make the path set infinite;
// maxVisits bounds the enumeration). Paths are returned in DFS order
// following each node's Next order.
func (s *Spec) Paths(maxVisits int) [][]TaskID {
	if maxVisits < 1 {
		maxVisits = 1
	}
	var out [][]TaskID
	visits := make(map[TaskID]int)
	var cur []TaskID
	var dfs func(id TaskID)
	dfs = func(id TaskID) {
		if visits[id] >= maxVisits {
			return
		}
		visits[id]++
		cur = append(cur, id)
		if len(s.Tasks[id].Next) == 0 {
			path := make([]TaskID, len(cur))
			copy(path, cur)
			out = append(out, path)
		} else {
			for _, n := range s.Tasks[id].Next {
				dfs(n)
			}
		}
		cur = cur[:len(cur)-1]
		visits[id]--
	}
	dfs(s.Start)
	return out
}
