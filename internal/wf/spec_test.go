package wf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"selfheal/internal/data"
)

// diamond builds start → choice(a|b) → join, a common test shape.
func diamond(t *testing.T) *Spec {
	t.Helper()
	s, err := NewBuilder("d", "start").
		Task("start").Writes("x").Then("choice").End().
		Task("choice").Reads("x").Writes("y").Then("a", "b").
		ChooseBy(ThresholdChoose("x", 10, "a", "b")).End().
		Task("a").Reads("y").Writes("z").Then("join").End().
		Task("b").Reads("y").Writes("z").Then("join").End().
		Task("join").Reads("z").Writes("w").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidateOK(t *testing.T) {
	if err := diamond(t).Validate(); err != nil {
		t.Fatal(err)
	}
	wf1, wf2 := Fig1Specs()
	if err := wf1.Validate(); err != nil {
		t.Errorf("fig1 wf1: %v", err)
	}
	if err := wf2.Validate(); err != nil {
		t.Errorf("fig1 wf2: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"missing start", func(s *Spec) { s.Start = "nope" }, "start task"},
		{"edge to undefined", func(s *Spec) {
			s.Tasks["join"].Next = []TaskID{"ghost"}
		}, "undefined task"},
		{"duplicate edge", func(s *Spec) {
			s.Tasks["a"].Next = []TaskID{"join", "join"}
		}, "duplicate edge"},
		{"choice without Choose", func(s *Spec) {
			s.Tasks["choice"].Choose = nil
		}, "no Choose"},
		{"non-choice with Choose", func(s *Spec) {
			s.Tasks["a"].Choose = func(map[data.Key]data.Value) TaskID { return "join" }
		}, "non-choice"},
		{"start with predecessors", func(s *Spec) {
			s.Tasks["join"].Next = []TaskID{"start"}
		}, "has predecessors"},
		{"unreachable task", func(s *Spec) {
			s.Tasks["orphan"] = &Task{ID: "orphan"}
		}, "unreachable"},
		{"empty key", func(s *Spec) {
			s.Tasks["a"].Reads = []data.Key{""}
		}, "empty data key"},
		{"no name", func(s *Spec) { s.Name = "" }, "no name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := diamond(t)
			c.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestEnds(t *testing.T) {
	s := diamond(t)
	ends := s.Ends()
	if len(ends) != 1 || ends[0] != "join" {
		t.Errorf("ends = %v, want [join]", ends)
	}
}

func TestReachableFrom(t *testing.T) {
	s := diamond(t)
	r := s.ReachableFrom("choice")
	for _, id := range []TaskID{"choice", "a", "b", "join"} {
		if !r[id] {
			t.Errorf("%s not reachable from choice", id)
		}
	}
	if r["start"] {
		t.Error("start should not be reachable from choice")
	}
}

func TestUnavoidable(t *testing.T) {
	s := diamond(t)
	for _, c := range []struct {
		id   TaskID
		want bool
	}{
		{"start", true},
		{"choice", true},
		{"a", false},
		{"b", false},
		{"join", true},
	} {
		if got := s.Unavoidable(c.id); got != c.want {
			t.Errorf("Unavoidable(%s) = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestControlDepDiamond(t *testing.T) {
	s := diamond(t)
	wantDeps := map[[2]TaskID]bool{
		{"choice", "a"}:     true,
		{"choice", "b"}:     true,
		{"choice", "join"}:  false, // join is on every path from choice
		{"start", "a"}:      false, // start is not a choice node
		{"choice", "start"}: false,
		{"a", "join"}:       false,
	}
	for pair, want := range wantDeps {
		if got := s.ControlDep(pair[0], pair[1]); got != want {
			t.Errorf("ControlDep(%s, %s) = %v, want %v", pair[0], pair[1], got, want)
		}
	}
}

func TestControlDepFig1(t *testing.T) {
	wf1, wf2 := Fig1Specs()
	// §II.D: t2 →_c t3, t2 →_c t4, t2 →_c t5; t6 is unavoidable.
	for _, to := range []TaskID{"t3", "t4", "t5"} {
		if !wf1.ControlDep("t2", to) {
			t.Errorf("want t2 →_c %s", to)
		}
	}
	if wf1.ControlDep("t2", "t6") {
		t.Error("t6 must not be control dependent on t2 (unavoidable)")
	}
	if wf1.ControlDep("t1", "t3") {
		t.Error("t1 has outdegree 1, cannot be a dominant node")
	}
	for _, id := range []TaskID{"t1", "t2", "t6"} {
		if !wf1.Unavoidable(id) {
			t.Errorf("%s should be unavoidable", id)
		}
	}
	for _, id := range []TaskID{"t3", "t4", "t5"} {
		if wf1.Unavoidable(id) {
			t.Errorf("%s should be avoidable", id)
		}
	}
	// The linear wf2 has no control dependences at all.
	for from := range wf2.Tasks {
		for to := range wf2.Tasks {
			if wf2.ControlDep(from, to) {
				t.Errorf("linear workflow has control dep %s → %s", from, to)
			}
		}
	}
}

func TestControlClosureTransitive(t *testing.T) {
	// Nested choices: c1 chooses (c2 | e); c2 chooses (x | y); all merge at z.
	s, err := NewBuilder("nested", "c1").
		Task("c1").Reads("k").Writes("v").Then("c2", "e").
		ChooseBy(ThresholdChoose("k", 0, "c2", "e")).End().
		Task("c2").Reads("v").Writes("v2").Then("x", "y").
		ChooseBy(ThresholdChoose("v", 0, "x", "y")).End().
		Task("x").Writes("o").Then("z").End().
		Task("y").Writes("o").Then("z").End().
		Task("e").Writes("o").Then("z").End().
		Task("z").Reads("o").Writes("done").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cl := s.ControlClosure()
	for _, to := range []TaskID{"c2", "e", "x", "y"} {
		if !cl["c1"][to] {
			t.Errorf("closure: want c1 →_c* %s", to)
		}
	}
	if cl["c1"]["z"] {
		t.Error("z is unavoidable, must not be in c1's closure")
	}
	if !cl["c2"]["x"] || !cl["c2"]["y"] {
		t.Error("c2's direct dependents missing from closure")
	}
	if cl["c2"]["e"] {
		t.Error("e is not reachable from c2")
	}
}

func TestPathsDiamond(t *testing.T) {
	s := diamond(t)
	paths := s.Paths(1)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
	for _, p := range paths {
		if p[0] != "start" || p[len(p)-1] != "join" {
			t.Errorf("malformed path %v", p)
		}
	}
}

func TestPathsFig1(t *testing.T) {
	wf1, _ := Fig1Specs()
	paths := wf1.Paths(1)
	// P1: t1 t2 t3 t4 t6 and P2: t1 t2 t5 t6.
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
}

func TestPathsCyclicBounded(t *testing.T) {
	// loop: a → b → c → (b | end): with maxVisits=2 paths revisit b, c.
	s, err := NewBuilder("loop", "a").
		Task("a").Writes("n").Then("b").End().
		Task("b").Reads("n").Writes("n").Then("c").End().
		Task("c").Reads("n").Writes("n").Then("b", "end").
		ChooseBy(ThresholdChoose("n", 3, "b", "end")).End().
		Task("end").Reads("n").Writes("out").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p1 := s.Paths(1)
	p2 := s.Paths(2)
	if len(p1) != 1 {
		t.Errorf("maxVisits=1: %d paths, want 1", len(p1))
	}
	if len(p2) != 2 {
		t.Errorf("maxVisits=2: %d paths, want 2 (one loop unrolling)", len(p2))
	}
}

func TestChoiceNodes(t *testing.T) {
	wf1, wf2 := Fig1Specs()
	if got := wf1.ChoiceNodes(); len(got) != 1 || got[0] != "t2" {
		t.Errorf("wf1 choice nodes = %v, want [t2]", got)
	}
	if got := wf2.ChoiceNodes(); len(got) != 0 {
		t.Errorf("wf2 choice nodes = %v, want none", got)
	}
}

func TestSumComputeDeterministic(t *testing.T) {
	f := SumCompute(5, "x", "y")
	in := map[data.Key]data.Value{"a": 1, "b": 2}
	out := f(in)
	if out["x"] != 8 || out["y"] != 9 {
		t.Errorf("SumCompute = %v", out)
	}
	out2 := f(map[data.Key]data.Value{"b": 2, "a": 1})
	if out2["x"] != out["x"] || out2["y"] != out["y"] {
		t.Error("SumCompute not deterministic across map orders")
	}
}

func TestThresholdChoose(t *testing.T) {
	f := ThresholdChoose("k", 10, "low", "high")
	if got := f(map[data.Key]data.Value{"k": 9}); got != "low" {
		t.Errorf("k=9 → %s, want low", got)
	}
	if got := f(map[data.Key]data.Value{"k": 10}); got != "high" {
		t.Errorf("k=10 → %s, want high", got)
	}
	if got := f(map[data.Key]data.Value{}); got != "low" {
		t.Errorf("missing key → %s, want low (reads as 0)", got)
	}
}

func TestGenerateValidAndVaried(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	branched := 0
	for i := 0; i < 50; i++ {
		s := Generate("g", DefaultGenConfig(), rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("gen %d: %v", i, err)
		}
		if len(s.ChoiceNodes()) > 0 {
			branched++
		}
		if len(s.Ends()) == 0 {
			t.Fatalf("gen %d: no end nodes", i)
		}
	}
	if branched == 0 {
		t.Error("no generated workflow had a choice node; generator too weak")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a := Generate("g", DefaultGenConfig(), rand.New(rand.NewSource(9)))
	b := Generate("g", DefaultGenConfig(), rand.New(rand.NewSource(9)))
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("same seed produced different task counts")
	}
	for id, ta := range a.Tasks {
		tb, ok := b.Tasks[id]
		if !ok {
			t.Fatalf("task %s missing in second generation", id)
		}
		if len(ta.Next) != len(tb.Next) || len(ta.Reads) != len(tb.Reads) {
			t.Fatalf("task %s differs structurally", id)
		}
		for i := range ta.Next {
			if ta.Next[i] != tb.Next[i] {
				t.Fatalf("task %s edge %d differs", id, i)
			}
		}
	}
}

func TestGenerateWithCyclesTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := GenConfig{Tasks: 12, Keys: 8, MaxReads: 3, BranchProb: 0.3, Cycles: 3, CycleBound: 3}
	cyclic := 0
	for i := 0; i < 40; i++ {
		s := Generate("g", cfg, rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("gen %d: %v", i, err)
		}
		// Detect an actual back edge: a choice node with a successor
		// earlier in the topological numbering.
		for id, task := range s.Tasks {
			for _, n := range task.Next {
				if lessTaskNum(n, id) {
					cyclic++
				}
			}
		}
	}
	if cyclic == 0 {
		t.Fatal("no generated workflow contained a back edge")
	}
}

// lessTaskNum compares generated task IDs t<i> numerically.
func lessTaskNum(a, b TaskID) bool {
	var x, y int
	if _, err := fmt.Sscanf(string(a), "t%d", &x); err != nil {
		return false
	}
	if _, err := fmt.Sscanf(string(b), "t%d", &y); err != nil {
		return false
	}
	return x < y
}

func TestCycleKeyNaming(t *testing.T) {
	if CycleKey("t3") != "cyc_t3" {
		t.Errorf("CycleKey = %s", CycleKey("t3"))
	}
}
