package wf

import (
	"fmt"
	"math/rand"

	"selfheal/internal/data"
)

// GenConfig controls random workflow generation.
type GenConfig struct {
	// Tasks is the number of tasks (≥ 2).
	Tasks int
	// Keys is the size of the shared data-object pool (≥ 1).
	Keys int
	// MaxReads bounds each task's read-set size.
	MaxReads int
	// BranchProb is the probability that a non-terminal task becomes a
	// choice node with two successors.
	BranchProb float64
	// Cycles adds up to this many guarded back edges: the back-edge
	// source becomes a loop gate that counts its own visits in a
	// dedicated counter key and exits after CycleBound iterations, so
	// every generated workflow still terminates.
	Cycles int
	// CycleBound is the per-gate iteration limit; 0 means 2.
	CycleBound int
	// MaxWrites bounds each task's write-set size (GenerateBlueprint only;
	// 0 means 2). Generate keeps its historical 1-or-2 write sets so
	// seeded scenarios stay bit-identical across releases.
	MaxWrites int
	// Prefix namespaces the pool keys: PoolKey(i) is Prefix + "k<i>". Runs
	// generated with disjoint prefixes have disjoint key footprints, which
	// makes their combined attack-free final state order-independent — the
	// property the fuzzer's serial-execution oracle needs.
	Prefix string
}

// PoolKey returns the name of pool key i under the configured prefix.
func (c GenConfig) PoolKey(i int) data.Key {
	return data.Key(fmt.Sprintf("%sk%d", c.Prefix, i))
}

// DefaultGenConfig returns a configuration producing medium-sized branched
// workflows.
func DefaultGenConfig() GenConfig {
	return GenConfig{Tasks: 12, Keys: 8, MaxReads: 3, BranchProb: 0.35}
}

// Generate builds a random acyclic workflow from cfg using rng. Tasks are
// t0..tN-1 in topological order with forward-only edges, so every generated
// workflow terminates. Every task beyond t0 has at least one predecessor and
// t0 is the unique start. Compute functions are value-sensitive sums
// (SumCompute) with a per-task bias so corrupted inputs propagate visibly;
// choice nodes branch on their first read key (or deterministically take the
// first branch when they read nothing).
//
// KeyName(i) names the pool keys; callers must Init every pool key before
// executing generated workflows, since read sets are arbitrary.
func Generate(name string, cfg GenConfig, rng *rand.Rand) *Spec {
	if cfg.Tasks < 2 {
		cfg.Tasks = 2
	}
	if cfg.Keys < 1 {
		cfg.Keys = 1
	}
	ids := make([]TaskID, cfg.Tasks)
	for i := range ids {
		ids[i] = TaskID(fmt.Sprintf("t%d", i))
	}
	spec := &Spec{Name: name, Start: ids[0], Tasks: make(map[TaskID]*Task, cfg.Tasks)}
	for i, id := range ids {
		t := &Task{ID: id}
		// Read set: random subset of the pool.
		nr := rng.Intn(cfg.MaxReads + 1)
		seen := make(map[data.Key]bool, nr)
		for len(t.Reads) < nr {
			k := cfg.PoolKey(rng.Intn(cfg.Keys))
			if !seen[k] {
				seen[k] = true
				t.Reads = append(t.Reads, k)
			}
		}
		// Write set: one or two pool keys.
		w1 := cfg.PoolKey(rng.Intn(cfg.Keys))
		t.Writes = []data.Key{w1}
		if rng.Float64() < 0.3 {
			if w2 := cfg.PoolKey(rng.Intn(cfg.Keys)); w2 != w1 {
				t.Writes = append(t.Writes, w2)
			}
		}
		t.Compute = SumCompute(data.Value(7*i+1), t.Writes...)
		spec.Tasks[id] = t
		_ = i
	}
	// Forward edges: each task i>0 gets one incoming edge from a random
	// earlier task; then optional branching out-edges.
	for i := 1; i < cfg.Tasks; i++ {
		from := ids[rng.Intn(i)]
		addEdge(spec.Tasks[from], ids[i])
	}
	for i := 0; i < cfg.Tasks-1; i++ {
		t := spec.Tasks[ids[i]]
		if len(t.Next) == 1 && rng.Float64() < cfg.BranchProb {
			// Add a second forward successor to form a choice.
			j := i + 1 + rng.Intn(cfg.Tasks-i-1)
			addEdge(t, ids[j])
		}
	}
	// Attach Choose functions to all multi-successor nodes.
	for _, t := range spec.Tasks {
		if len(t.Next) > 1 {
			t.Choose = genChoose(t)
		}
	}
	// Guarded back edges: turn a single-successor interior node into a
	// loop gate that re-enters an earlier node until its visit counter
	// reaches the bound.
	bound := cfg.CycleBound
	if bound <= 0 {
		bound = 2
	}
	// The gate must have exactly one successor (so the added back edge
	// makes it a choice) and must not be the start node (a back edge to
	// the start would violate 0-indegree). Gates are drawn preferentially
	// from early positions: early nodes lie on almost every execution
	// path, so the loop actually runs.
	applied := 0
	for attempt := 0; attempt < 10*cfg.Cycles && applied < cfg.Cycles; attempt++ {
		span := cfg.Tasks/3 + 2
		if span > cfg.Tasks-1 {
			span = cfg.Tasks - 1
		}
		gi := 1 + rng.Intn(span)
		gate := spec.Tasks[ids[gi]]
		if len(gate.Next) != 1 {
			continue
		}
		ti := 1 + rng.Intn(gi)
		target := ids[ti]
		if target == gate.ID || containsTask(gate.Next, target) {
			continue
		}
		addLoopGate(gate, target, bound)
		applied++
	}
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("wf: generated workflow invalid: %v", err))
	}
	return spec
}

// CycleKey names the dedicated visit counter of a loop gate. Counters are
// never initialized: a missing key reads as zero.
func CycleKey(gate TaskID) data.Key {
	return data.Key("cyc_" + string(gate))
}

// addLoopGate rewires task gate: it counts its own visits in CycleKey(gate)
// and loops back to target until the counter reaches bound.
func addLoopGate(gate *Task, target TaskID, bound int) {
	key := CycleKey(gate.ID)
	forward := gate.Next[0]
	gate.Next = []TaskID{target, forward}
	gate.Reads = append(gate.Reads, key)
	gate.Writes = append(gate.Writes, key)
	inner := gate.Compute
	gate.Compute = func(reads map[data.Key]data.Value) map[data.Key]data.Value {
		out := inner(reads)
		out[key] = reads[key] + 1
		return out
	}
	limit := data.Value(bound)
	gate.Choose = func(reads map[data.Key]data.Value) TaskID {
		if reads[key]+1 < limit {
			return target
		}
		return forward
	}
}

func containsTask(ids []TaskID, id TaskID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// GenKey returns the name of pool key i used by Generate.
func GenKey(i int) data.Key {
	return data.Key(fmt.Sprintf("k%d", i))
}

func addEdge(from *Task, to TaskID) {
	for _, n := range from.Next {
		if n == to {
			return
		}
	}
	from.Next = append(from.Next, to)
}

// genChoose branches on the parity band of the task's first read key, which
// makes path selection sensitive to corrupted data. Tasks reading nothing
// always take their first branch.
func genChoose(t *Task) ChooseFunc {
	succ := make([]TaskID, len(t.Next))
	copy(succ, t.Next)
	var key data.Key
	if len(t.Reads) > 0 {
		key = t.Reads[0]
	}
	return func(reads map[data.Key]data.Value) TaskID {
		if key == "" {
			return succ[0]
		}
		v := reads[key]
		if v < 0 {
			v = -v
		}
		return succ[int(v/5)%len(succ)]
	}
}
