package wf

import (
	"fmt"
	"math/rand"

	"selfheal/internal/data"
)

// A Blueprint is a fully serializable workflow description: every task body
// is a sum-plus-bias compute (SumCompute) and every choice is a threshold
// branch (ThresholdChoose), so the whole workflow round-trips through the
// wfjson wire format without loss. GenerateBlueprint produces randomized
// blueprints for the stateful API fuzzer (internal/fuzz), which must submit
// the exact document it can later replay — a bare *Spec with closure task
// bodies has no serializable form.
type Blueprint struct {
	// Name identifies the workflow.
	Name string `json:"name"`
	// Start is the 0-indegree entry task.
	Start TaskID `json:"start"`
	// Tasks lists the task declarations in a stable order.
	Tasks []BlueprintTask `json:"tasks"`
	// Init declares initial store values for pool keys the workflow reads
	// before any task writes them (first writer wins at submission).
	Init map[data.Key]data.Value `json:"init,omitempty"`
}

// BlueprintTask is one serializable task declaration.
type BlueprintTask struct {
	ID     TaskID     `json:"id"`
	Next   []TaskID   `json:"next,omitempty"`
	Reads  []data.Key `json:"reads,omitempty"`
	Writes []data.Key `json:"writes,omitempty"`
	// Bias is the constant added to the sum of reads (SumCompute).
	Bias data.Value `json:"bias,omitempty"`
	// Choose declares the threshold branch of a two-successor choice node;
	// nil for non-choice tasks.
	Choose *BlueprintChoose `json:"choose,omitempty"`
}

// BlueprintChoose is a serializable ThresholdChoose: pick Low when the value
// of Key is below Threshold, High otherwise.
type BlueprintChoose struct {
	Key       data.Key   `json:"key"`
	Threshold data.Value `json:"threshold"`
	Low       TaskID     `json:"low"`
	High      TaskID     `json:"high"`
}

// Spec compiles the blueprint into an executable, validated specification.
// The compilation uses exactly the primitives the wfjson decoder uses
// (SumCompute, ThresholdChoose), so a blueprint submitted over the wire and
// a blueprint compiled locally execute identically.
func (b *Blueprint) Spec() (*Spec, error) {
	spec := &Spec{
		Name:  b.Name,
		Start: b.Start,
		Tasks: make(map[TaskID]*Task, len(b.Tasks)),
	}
	for _, bt := range b.Tasks {
		t := &Task{
			ID:     bt.ID,
			Next:   append([]TaskID(nil), bt.Next...),
			Reads:  append([]data.Key(nil), bt.Reads...),
			Writes: append([]data.Key(nil), bt.Writes...),
		}
		t.Compute = SumCompute(bt.Bias, t.Writes...)
		if c := bt.Choose; c != nil {
			t.Choose = ThresholdChoose(c.Key, c.Threshold, c.Low, c.High)
		}
		if _, dup := spec.Tasks[t.ID]; dup {
			return nil, fmt.Errorf("wf: blueprint %s: duplicate task %q", b.Name, bt.ID)
		}
		spec.Tasks[t.ID] = t
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// GenerateBlueprint builds a random serializable workflow from cfg using
// rng. The graph shape follows Generate — tasks t0..tN-1 in topological
// order with forward-only edges, every task beyond t0 reachable from the
// unique start — but task bodies are restricted to the wfjson-representable
// forms: sum-plus-bias computes and two-way threshold branches keyed on one
// of the task's reads (so corrupted inputs flip branch decisions). Cycles
// are never generated: the wire format has no loop gates, and acyclicity
// gives every task instance visit number 1, which lets the fuzzer name
// instances deterministically before they execute.
//
// Pool keys are cfg.PoolKey(i); cfg.Prefix namespaces them so concurrent
// runs can be given disjoint footprints. Init seeds every key some task
// reads, making the attack-free final state a deterministic function of the
// blueprint alone.
func GenerateBlueprint(name string, cfg GenConfig, rng *rand.Rand) *Blueprint {
	if cfg.Tasks < 2 {
		cfg.Tasks = 2
	}
	if cfg.Keys < 1 {
		cfg.Keys = 1
	}
	maxWrites := cfg.MaxWrites
	if maxWrites < 1 {
		maxWrites = 2
	}
	ids := make([]TaskID, cfg.Tasks)
	for i := range ids {
		ids[i] = TaskID(fmt.Sprintf("t%d", i))
	}
	tasks := make([]BlueprintTask, cfg.Tasks)
	for i := range tasks {
		bt := BlueprintTask{ID: ids[i], Bias: data.Value(7*i + 1)}
		// Read and write sets draw distinct keys, so both are capped by the
		// pool size or the draw loops below could never fill them.
		nr := min(rng.Intn(cfg.MaxReads+1), cfg.Keys)
		seen := make(map[data.Key]bool, nr)
		for len(bt.Reads) < nr {
			k := cfg.PoolKey(rng.Intn(cfg.Keys))
			if !seen[k] {
				seen[k] = true
				bt.Reads = append(bt.Reads, k)
			}
		}
		nw := min(1+rng.Intn(maxWrites), cfg.Keys)
		seenW := make(map[data.Key]bool, nw)
		for len(bt.Writes) < nw && len(seenW) < cfg.Keys {
			k := cfg.PoolKey(rng.Intn(cfg.Keys))
			if !seenW[k] {
				seenW[k] = true
				bt.Writes = append(bt.Writes, k)
			}
		}
		tasks[i] = bt
	}
	// Forward edges: each task i>0 gets one incoming edge from a random
	// earlier task, so everything is reachable from t0. Out-degree is
	// capped at 2 (the wire format's choices are two-way); a donor with
	// spare capacity always exists since i-1 edges never exhaust the 2i
	// slots of tasks 0..i-1.
	for i := 1; i < cfg.Tasks; i++ {
		for {
			from := &tasks[rng.Intn(i)]
			if len(from.Next) < 2 && addBlueprintEdge(from, ids[i]) {
				break
			}
		}
	}
	// Branching: some single-successor tasks gain a second forward
	// successor.
	for i := 0; i < cfg.Tasks-1; i++ {
		bt := &tasks[i]
		if len(bt.Next) != 1 || rng.Float64() >= cfg.BranchProb {
			continue
		}
		j := i + 1 + rng.Intn(cfg.Tasks-i-1)
		addBlueprintEdge(bt, ids[j])
	}
	// Every two-successor task becomes a threshold choice. The branch key
	// is one of the task's reads when it has any — a corrupted read then
	// reroutes the workflow, which is the control-dependence recovery path
	// the fuzzer wants to stress.
	for i := range tasks {
		bt := &tasks[i]
		if len(bt.Next) != 2 {
			continue
		}
		key := cfg.PoolKey(rng.Intn(cfg.Keys))
		if len(bt.Reads) > 0 {
			key = bt.Reads[rng.Intn(len(bt.Reads))]
		} else {
			bt.Reads = append(bt.Reads, key)
		}
		bt.Choose = &BlueprintChoose{
			Key:       key,
			Threshold: data.Value(rng.Intn(40)),
			Low:       bt.Next[0],
			High:      bt.Next[1],
		}
	}
	bp := &Blueprint{Name: name, Start: ids[0], Tasks: tasks,
		Init: make(map[data.Key]data.Value)}
	// Seed every read pool key so the attack-free state is fully determined
	// by the blueprint (unseeded keys read as 0 either way; explicit inits
	// also exercise the submission path's first-writer-wins seeding).
	for _, bt := range tasks {
		for _, k := range bt.Reads {
			if _, ok := bp.Init[k]; !ok {
				bp.Init[k] = data.Value(rng.Intn(25))
			}
		}
	}
	if _, err := bp.Spec(); err != nil {
		panic(fmt.Sprintf("wf: generated blueprint invalid: %v", err))
	}
	return bp
}

// addBlueprintEdge appends an edge unless it already exists; it reports
// whether the edge was added.
func addBlueprintEdge(from *BlueprintTask, to TaskID) bool {
	for _, n := range from.Next {
		if n == to {
			return false
		}
	}
	from.Next = append(from.Next, to)
	return true
}
