package wf

import (
	"selfheal/internal/data"
	"strings"
	"testing"
)

func lintMsgs(ws []Warning) string {
	var sb strings.Builder
	for _, w := range ws {
		sb.WriteString(w.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestLintCleanSpecs(t *testing.T) {
	wf1, wf2 := Fig1Specs()
	// Fig 1's specs read a few cross-workflow keys (a, g written by the
	// other workflow), so per-spec linting reports initial-only reads;
	// nothing else.
	for _, s := range []*Spec{wf1, wf2} {
		for _, w := range Lint(s) {
			if !strings.Contains(w.Msg, "initial value only") &&
				!strings.Contains(w.Msg, "never read") {
				t.Errorf("%s: unexpected warning: %s", s.Name, w)
			}
		}
	}
}

func TestLintChoiceWithoutWrites(t *testing.T) {
	s, err := NewBuilder("l", "c").
		Task("c").Reads("k").Then("a", "b").
		ChooseBy(ThresholdChoose("k", 1, "a", "b")).End().
		Task("a").Writes("o").End().
		Task("b").Writes("o").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := Lint(s)
	if !strings.Contains(lintMsgs(ws), "decision leaves no data trail") {
		t.Errorf("missing choice-without-writes warning:\n%s", lintMsgs(ws))
	}
}

func TestLintDeadWrites(t *testing.T) {
	s, err := NewBuilder("l", "a").
		Task("a").Writes("unused").Then("b").End().
		Task("b").Writes("final").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := lintMsgs(Lint(s))
	if !strings.Contains(ws, `a: writes are never read`) {
		t.Errorf("missing dead-write warning:\n%s", ws)
	}
	// End-node writes are outputs, not dead data.
	if strings.Contains(ws, "b: writes are never read") {
		t.Errorf("end node flagged for dead writes:\n%s", ws)
	}
}

func TestLintInitialOnlyRead(t *testing.T) {
	s, err := NewBuilder("l", "a").
		Task("a").Reads("ghost").Writes("o").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lintMsgs(Lint(s)), `reads "ghost"`) {
		t.Error("missing initial-only-read warning")
	}
}

func TestLintInescapableCycle(t *testing.T) {
	s := &Spec{
		Name:  "trap",
		Start: "a",
		Tasks: map[TaskID]*Task{
			"a": {ID: "a", Next: []TaskID{"b"}, Writes: data_k("x")},
			"b": {ID: "b", Next: []TaskID{"c"}, Reads: data_k("x"), Writes: data_k("x")},
			"c": {ID: "c", Next: []TaskID{"b", "end"}, Reads: data_k("x"), Writes: data_k("x")},
			// d-e form an inescapable loop reachable from end? Keep it
			// simple: make end → d → e → d.
			"end": {ID: "end", Next: []TaskID{"d"}, Reads: data_k("x")},
			"d":   {ID: "d", Next: []TaskID{"e"}, Writes: data_k("y")},
			"e":   {ID: "e", Next: []TaskID{"d"}, Reads: data_k("y"), Writes: data_k("y")},
		},
	}
	s.Tasks["c"].Choose = ThresholdChoose("x", 3, "b", "end")
	// d/e loop has no exit at all, so the spec has no reachable end node —
	// Validate rejects it; Lint reports that as its single finding.
	ws := Lint(s)
	if len(ws) != 1 || !strings.Contains(ws[0].Msg, "invalid specification") {
		t.Fatalf("want invalid-spec finding, got:\n%s", lintMsgs(ws))
	}
}

func TestLintChoicelessCycle(t *testing.T) {
	// A loop whose members are all single-successor, with the exit choice
	// OUTSIDE the loop, still traps execution once entered.
	s, err := NewBuilder("trap2", "gate").
		Task("gate").Reads("k").Writes("g").Then("loop1", "out").
		ChooseBy(ThresholdChoose("k", 1, "loop1", "out")).End().
		Task("loop1").Reads("g").Writes("g").Then("loop2").End().
		Task("loop2").Reads("g").Writes("g").Then("loop1").End().
		Task("out").Reads("g").Writes("o").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lintMsgs(Lint(s)), "can never leave") {
		t.Errorf("choiceless cycle not flagged:\n%s", lintMsgs(Lint(s)))
	}
	// The same loop with an interior choice node is escapable: no warning.
	s, err = NewBuilder("trap3", "gate").
		Task("gate").Reads("k").Writes("g").Then("loop1", "out").
		ChooseBy(ThresholdChoose("k", 1, "loop1", "out")).End().
		Task("loop1").Reads("g").Writes("g").Then("loop2").End().
		Task("loop2").Reads("g").Writes("g").Then("loop1", "out").
		ChooseBy(ThresholdChoose("g", 5, "loop1", "out")).End().
		Task("out").Reads("g").Writes("o").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// This loop HAS a choice node → no cycle warning.
	if strings.Contains(lintMsgs(Lint(s)), "can never leave") {
		t.Error("escapable cycle flagged")
	}
}

func data_k(keys ...string) []data.Key {
	out := make([]data.Key, len(keys))
	for i, k := range keys {
		out[i] = data.Key(k)
	}
	return out
}
