package wf

import (
	"math/rand"
	"testing"

	"selfheal/internal/data"
)

// Generated blueprints compile to valid specs across many seeds and shapes,
// and never contain cycles (every instance executes with visit 1).
func TestGenerateBlueprintAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := GenConfig{
			Tasks:      2 + rng.Intn(10),
			Keys:       1 + rng.Intn(6),
			MaxReads:   rng.Intn(4),
			MaxWrites:  rng.Intn(3),
			BranchProb: rng.Float64(),
			Prefix:     "p_",
		}
		bp := GenerateBlueprint("g", cfg, rng)
		spec, err := bp.Spec()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(spec.Tasks) != cfg.Tasks {
			t.Fatalf("seed %d: %d tasks, want %d", seed, len(spec.Tasks), cfg.Tasks)
		}
		for id, task := range spec.Tasks {
			if len(task.Next) > 2 {
				t.Fatalf("seed %d: task %s has %d successors", seed, id, len(task.Next))
			}
		}
	}
}

func TestGenerateBlueprintDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Prefix = "d_"
	a := GenerateBlueprint("g", cfg, rand.New(rand.NewSource(7)))
	b := GenerateBlueprint("g", cfg, rand.New(rand.NewSource(7)))
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("same seed, different shapes")
	}
	for i := range a.Tasks {
		if a.Tasks[i].ID != b.Tasks[i].ID || len(a.Tasks[i].Next) != len(b.Tasks[i].Next) {
			t.Fatalf("task %d differs across identical seeds", i)
		}
	}
}

// Blueprint execution is deterministic: two independent executions of the
// compiled spec over the declared inits produce identical stores — the
// property the fuzzer's benign-equality oracle is built on.
func TestBlueprintExecutionDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Prefix = "x_"
	bp := GenerateBlueprint("g", cfg, rand.New(rand.NewSource(3)))

	exec := func() *data.Store {
		store := data.NewStore()
		for k, v := range bp.Init {
			store.Init(k, v)
		}
		spec, err := bp.Spec()
		if err != nil {
			t.Fatal(err)
		}
		runBlueprintSpec(t, store, spec)
		return store
	}
	a, b := exec(), exec()
	if !data.Equal(a, b) {
		t.Fatalf("nondeterministic execution:\n%s", data.Diff(a, b))
	}
}

func TestBlueprintSpecRejectsDuplicateTask(t *testing.T) {
	bp := &Blueprint{
		Name:  "dup",
		Start: "a",
		Tasks: []BlueprintTask{
			{ID: "a", Writes: []data.Key{"k"}},
			{ID: "a", Writes: []data.Key{"k"}},
		},
	}
	if _, err := bp.Spec(); err == nil {
		t.Fatal("duplicate task accepted")
	}
}

// runBlueprintSpec serially executes spec's tasks against store following
// choice decisions, without the engine (wf has no engine dependency).
func runBlueprintSpec(t *testing.T, store *data.Store, spec *Spec) {
	t.Helper()
	cur := spec.Start
	pos := 1.0
	for steps := 0; ; steps++ {
		if steps > 10*len(spec.Tasks) {
			t.Fatal("blueprint execution does not terminate")
		}
		task := spec.Tasks[cur]
		reads := make(map[data.Key]data.Value, len(task.Reads))
		for _, k := range task.Reads {
			if ver, ok := store.Get(k); ok {
				reads[k] = ver.Value
			}
		}
		for k, v := range task.Compute(reads) {
			store.Write(k, v, pos, string(cur), false)
			pos++
		}
		switch {
		case len(task.Next) == 0:
			return
		case task.Choose != nil:
			cur = task.Choose(reads)
		default:
			cur = task.Next[0]
		}
	}
}
