package wf

import "selfheal/internal/data"

// Fig1Specs returns the two workflows of the paper's Figure 1.
//
// Workflow wf1: t1 → t2, t2 chooses t3 (attack path P1) or t5 (clean path
// P2); t3 → t4 → t6 and t5 → t6; t6 is the end. Workflow wf2 is the linear
// t7 → t8 → t9 → t10 processed concurrently. The data flow is arranged so
// that the paper's narrative holds exactly:
//
//   - t1 writes a. The attack corrupts t1's execution (a = 100 instead of 1).
//   - t2 reads a, writes b = a+1, and chooses t5 when a < 50, t3 otherwise:
//     the corrupted a drives the execution down the wrong path P1.
//   - t3 reads nothing and writes c = 42: it computes correctly and is only
//     control dependent on t2, making it the paper's condition-2 candidate
//     (undone because the re-execution leaves the path, yet never wrong in
//     its own computation).
//   - t4 reads b and c, writes d: infected through flow from t2 (cond 3).
//   - t5 reads b, writes e (never executed in the attacked run).
//   - t6 reads e, writes f: flow dependent on the unexecuted t5, so it is a
//     condition-4 undo candidate.
//   - t7 writes g; t8 reads a and g (infected by t1); t9 reads g (clean);
//     t10 reads h from t8 (transitively infected).
//
// Initial values required: e = 0 (read by t6 when t5 never ran).
func Fig1Specs() (wf1, wf2 *Spec) {
	wf1 = NewBuilder("wf1", "t1").
		Task("t1").Writes("a").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"a": 1}
		}).Then("t2").
		End().Task("t2").Reads("a").Writes("b").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"b": r["a"] + 1}
		}).Then("t3", "t5").
		ChooseBy(ThresholdChoose("a", 50, "t5", "t3")).
		End().Task("t3").Writes("c").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"c": 42}
		}).Then("t4").
		End().Task("t4").Reads("b", "c").Writes("d").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"d": r["b"] + r["c"]}
		}).Then("t6").
		End().Task("t5").Reads("b").Writes("e").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"e": r["b"] + 5}
		}).Then("t6").
		End().Task("t6").Reads("e").Writes("f").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"f": r["e"] + 7}
		}).
		End().MustBuild()

	wf2 = NewBuilder("wf2", "t7").
		Task("t7").Writes("g").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"g": 3}
		}).Then("t8").
		End().Task("t8").Reads("a", "g").Writes("h").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"h": r["a"] + r["g"]}
		}).Then("t9").
		End().Task("t9").Reads("g").Writes("i").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"i": r["g"] + 1}
		}).Then("t10").
		End().Task("t10").Reads("h").Writes("j").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"j": r["h"] * 2}
		}).
		End().MustBuild()
	return wf1, wf2
}
