package wf

import (
	"fmt"

	"selfheal/internal/data"
)

// Builder assembles a Spec incrementally. It exists so that examples and
// tests can declare workflows without writing map literals; Build validates
// the result.
type Builder struct {
	spec *Spec
	err  error
}

// NewBuilder starts a workflow named name whose entry task is start.
func NewBuilder(name string, start TaskID) *Builder {
	return &Builder{spec: &Spec{
		Name:  name,
		Start: start,
		Tasks: make(map[TaskID]*Task),
	}}
}

// TaskBuilder configures one task.
type TaskBuilder struct {
	b *Builder
	t *Task
}

// End returns the parent Builder so task declarations can be chained.
func (tb *TaskBuilder) End() *Builder { return tb.b }

// Task declares (or returns, if already declared) the task with the given ID.
func (b *Builder) Task(id TaskID) *TaskBuilder {
	if t, ok := b.spec.Tasks[id]; ok {
		return &TaskBuilder{b: b, t: t}
	}
	t := &Task{ID: id}
	b.spec.Tasks[id] = t
	return &TaskBuilder{b: b, t: t}
}

// Reads sets the task's read set.
func (tb *TaskBuilder) Reads(keys ...data.Key) *TaskBuilder {
	tb.t.Reads = keys
	return tb
}

// Writes sets the task's write set.
func (tb *TaskBuilder) Writes(keys ...data.Key) *TaskBuilder {
	tb.t.Writes = keys
	return tb
}

// Compute sets the task's compute function.
func (tb *TaskBuilder) Compute(f ComputeFunc) *TaskBuilder {
	tb.t.Compute = f
	return tb
}

// Then appends successor edges.
func (tb *TaskBuilder) Then(next ...TaskID) *TaskBuilder {
	tb.t.Next = append(tb.t.Next, next...)
	return tb
}

// ChooseBy sets the branch-selection function for a choice node.
func (tb *TaskBuilder) ChooseBy(f ChooseFunc) *TaskBuilder {
	tb.t.Choose = f
	return tb
}

// Build validates and returns the assembled specification.
func (b *Builder) Build() (*Spec, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.spec.Validate(); err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	return b.spec, nil
}

// MustBuild is Build for static specifications that cannot fail at run time.
func (b *Builder) MustBuild() *Spec {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// SumCompute returns a ComputeFunc writing, to every key of writes, the sum
// of all read values plus bias. It is the workhorse task body for tests,
// examples and generated workflows: deterministic and value-sensitive, so
// corrupt inputs visibly propagate.
func SumCompute(bias data.Value, writes ...data.Key) ComputeFunc {
	return func(reads map[data.Key]data.Value) map[data.Key]data.Value {
		var sum data.Value
		for _, v := range reads {
			sum += v
		}
		out := make(map[data.Key]data.Value, len(writes))
		for i, k := range writes {
			out[k] = sum + bias + data.Value(i)
		}
		return out
	}
}

// ThresholdChoose returns a ChooseFunc selecting ifLow when the value of key
// is below threshold and ifHigh otherwise. Missing keys read as 0.
func ThresholdChoose(key data.Key, threshold data.Value, ifLow, ifHigh TaskID) ChooseFunc {
	return func(reads map[data.Key]data.Value) TaskID {
		if reads[key] < threshold {
			return ifLow
		}
		return ifHigh
	}
}
