package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"selfheal/internal/engine"
	"selfheal/internal/shard"
	"selfheal/internal/triage"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// The versioned workflow API (docs/API.md): the sharded self-healing
// service as an HTTP resource model.
//
//	POST /api/v1/runs        submit a workflow run (wfjson spec)
//	GET  /api/v1/runs        list run statuses
//	GET  /api/v1/runs/{id}   one run's status
//	POST /api/v1/alerts      deliver an IDS alert
//	GET  /api/v1/state       NORMAL/SCAN/RECOVERY, queues, metrics
//
// Every error is the single JSON envelope {"error": {"code", "message"}};
// sentinel errors of the execution layers map to status codes via
// errors.Is (400 bad_spec, 404 not_found, 409 run_exists, 429 queue_full).

// runRequest is the POST /api/v1/runs document.
type runRequest struct {
	// ID names the run; must be unique for the service's lifetime.
	ID string `json:"id"`
	// Spec is the declarative workflow (wfjson format, as used by wfrun
	// and POST /repair). Its init block seeds store keys that have no
	// committed versions yet.
	Spec wfjson.SpecJSON `json:"spec"`
}

// alertRequest is the POST /api/v1/alerts document: a single alert (bad),
// a batch of alerts (batch), or both.
type alertRequest struct {
	// Bad lists the malicious task instances ("run:task:visit").
	Bad []string `json:"bad,omitempty"`
	// Batch delivers several alerts in one admission, each its own bad
	// set. The whole request is validated before anything is queued.
	Batch [][]string `json:"batch,omitempty"`
}

// stateResponse is the GET /api/v1/state document.
type stateResponse struct {
	// State is the §IV.C classification: NORMAL, SCAN or RECOVERY.
	State string `json:"state"`
	// Queues reports the bounded queues' current depths.
	Queues struct {
		Alerts   int `json:"alerts"`
		Units    int `json:"units"`
		Deferred int `json:"deferred"`
	} `json:"queues"`
	// Metrics is the cumulative service accounting (shard.Metrics).
	Metrics shard.Metrics `json:"metrics"`
	// Runs lists every submitted run's status.
	Runs []shard.RunInfo `json:"runs"`
}

// v1Routes mounts the versioned workflow API over the sharded service.
func v1Routes(mux *http.ServeMux, svc *shard.Service) {
	mux.HandleFunc("POST /api/v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var req runRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("body: %w", err))
			return
		}
		if req.ID == "" {
			serviceError(w, svc, fmt.Errorf("run id is required: %w", engine.ErrBadSpec))
			return
		}
		// SubmitRunSpec validates the document, seeds the declared initial
		// values (first writer wins) through the commit pipeline and, on a
		// durable service, persists the spec record before placing the run.
		if err := svc.SubmitRunSpec(req.ID, &req.Spec); err != nil {
			serviceError(w, svc, err)
			return
		}
		info, err := svc.RunInfo(req.ID)
		if err != nil {
			serviceError(w, svc, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /api/v1/runs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, svc.Runs())
	})

	mux.HandleFunc("GET /api/v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := svc.RunInfo(r.PathValue("id"))
		if err != nil {
			serviceError(w, svc, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("POST /api/v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		var req alertRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("body: %w", err))
			return
		}
		toIDs := func(ss []string) []wlog.InstanceID {
			ids := make([]wlog.InstanceID, len(ss))
			for i, s := range ss {
				ids[i] = wlog.InstanceID(s)
			}
			return ids
		}
		alerts := make([]triage.Alert, 0, len(req.Batch)+1)
		if len(req.Bad) > 0 {
			alerts = append(alerts, triage.Alert{Bad: toIDs(req.Bad)})
		}
		for _, b := range req.Batch {
			alerts = append(alerts, triage.Alert{Bad: toIDs(b)})
		}
		if len(alerts) == 0 {
			serviceError(w, svc, fmt.Errorf("alert names no instances: %w", engine.ErrBadSpec))
			return
		}
		admitted, dropped, err := svc.ReportAlerts(alerts)
		if err != nil {
			serviceError(w, svc, err)
			return
		}
		if admitted == 0 {
			// The whole batch was lost to the bounded queue: real
			// backpressure, with a Retry-After derived from the queue depth
			// and the measured drain rate.
			serviceError(w, svc, fmt.Errorf("shard: alert queue full (capacity dropped %d alerts): %w", dropped, shard.ErrQueueFull))
			return
		}
		if dropped > 0 {
			// Partial admission: report success but hint the reporter to
			// pace the rest.
			w.Header().Set("Retry-After", strconv.Itoa(svc.RetryAfterSeconds()))
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"status":   "queued",
			"admitted": admitted,
			"dropped":  dropped,
			"state":    svc.State().String(),
		})
	})

	mux.HandleFunc("GET /api/v1/state", func(w http.ResponseWriter, _ *http.Request) {
		var resp stateResponse
		resp.State = svc.State().String()
		resp.Queues.Alerts, resp.Queues.Units, resp.Queues.Deferred = svc.QueueLengths()
		resp.Metrics = svc.Metrics()
		resp.Runs = svc.Runs()
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /api/v1/store", func(w http.ResponseWriter, _ *http.Request) {
		snap := svc.Store().Snapshot()
		out := make(map[string]int64, len(snap))
		for k, v := range snap {
			out[string(k)] = int64(v)
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// serviceError maps the execution layers' sentinel errors onto status codes
// and writes the error envelope. 429s carry a Retry-After derived from the
// service's current alert-queue depth and measured drain rate instead of a
// fixed constant, so a storming reporter backs off proportionally to the
// actual congestion.
func serviceError(w http.ResponseWriter, svc *shard.Service, err error) {
	switch {
	case errors.Is(err, engine.ErrBadSpec):
		httpError(w, http.StatusBadRequest, err)
	case errors.Is(err, engine.ErrUnknownRun):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, engine.ErrRunExists):
		httpError(w, http.StatusConflict, err)
	case errors.Is(err, shard.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(svc.RetryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing sensible to do but note it for the
		// request log.
		_ = err
	}
}
