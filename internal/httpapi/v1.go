package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"selfheal/internal/engine"
	"selfheal/internal/shard"
	"selfheal/internal/triage"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// The versioned workflow API (docs/API.md): the self-healing execution layer
// as an HTTP resource model, written against the Backend surface so the
// sharded single-process service and a cluster node serve identical routes.
//
//	POST /api/v1/runs          submit a workflow run (wfjson spec)
//	GET  /api/v1/runs          list run statuses (paginated with query params)
//	GET  /api/v1/runs/{id}     one run's status (?trace=1 adds instance IDs)
//	POST /api/v1/alerts        deliver IDS alerts
//	GET  /api/v1/state         NORMAL/SCAN/RECOVERY, queues, metrics
//	GET  /api/v1/store         committed store snapshot
//	GET  /api/v1/openapi.json  generated OpenAPI 3.1 description
//
// Every error is the single JSON envelope {"error": {"code", "message"}};
// sentinel errors of the execution layers map to status codes via
// errors.Is (400 bad_request, 404 not_found, 409 run_exists, 429 queue_full).

// runRequest is the POST /api/v1/runs document.
type runRequest struct {
	// ID names the run; must be unique for the service's lifetime.
	ID string `json:"id"`
	// Spec is the declarative workflow (wfjson format, as used by wfrun
	// and POST /repair). Its init block seeds store keys that have no
	// committed versions yet.
	Spec wfjson.SpecJSON `json:"spec"`
}

// alertRequest is the POST /api/v1/alerts document: a single alert (bad),
// a batch of alerts (batch), or both.
type alertRequest struct {
	// Bad lists the malicious task instances ("run/task#visit").
	Bad []string `json:"bad,omitempty"`
	// Batch delivers several alerts in one admission, each its own bad
	// set. The whole request is validated before anything is queued.
	Batch [][]string `json:"batch,omitempty"`
}

// stateResponse is the GET /api/v1/state document.
type stateResponse struct {
	// State is the §IV.C classification: NORMAL, SCAN or RECOVERY.
	State string `json:"state"`
	// Queues reports the bounded queues' current depths.
	Queues struct {
		Alerts   int `json:"alerts"`
		Units    int `json:"units"`
		Deferred int `json:"deferred"`
	} `json:"queues"`
	// Metrics is the cumulative service accounting (shard.Metrics).
	Metrics shard.Metrics `json:"metrics"`
	// Runs lists every submitted run's status.
	Runs []shard.RunInfo `json:"runs"`
}

// runsPage is the paginated GET /api/v1/runs document, returned only when
// the request carries any of the status/limit/after query parameters; the
// bare-array response is preserved for parameterless requests.
type runsPage struct {
	Runs []shard.RunInfo `json:"runs"`
	// Next is the resume cursor: pass it as ?after= to fetch the following
	// page. Empty when this page is the last. The cursor is stable because
	// the listing is sorted by immutable run IDs — runs submitted while
	// paginating are seen iff they sort after the cursor.
	Next string `json:"next,omitempty"`
}

// tracedRunInfo is the GET /api/v1/runs/{id}?trace=1 document: the run
// status plus its committed instance IDs.
type tracedRunInfo struct {
	shard.RunInfo
	// Trace lists the run's committed instance IDs ("run/task#visit") in
	// commit (LSN) order, forged instances included — exactly the IDs
	// POST /api/v1/alerts accepts.
	Trace []wlog.InstanceID `json:"trace"`
}

// v1Routes mounts the versioned workflow API over a backend.
func v1Routes(mux *apiMux, b Backend, families []string) {
	mux.handle("POST", "/api/v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var req runRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("body: %w", err))
			return
		}
		if req.ID == "" {
			serviceError(w, b, fmt.Errorf("run id is required: %w", engine.ErrBadSpec))
			return
		}
		// SubmitRunSpec validates the document, seeds the declared initial
		// values (first writer wins) through the commit pipeline and, on a
		// durable service, persists the spec record before placing the run.
		if err := b.SubmitRunSpec(req.ID, &req.Spec); err != nil {
			serviceError(w, b, err)
			return
		}
		info, err := b.RunInfo(req.ID)
		if err != nil {
			serviceError(w, b, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.handle("GET", "/api/v1/runs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if !q.Has("status") && !q.Has("limit") && !q.Has("after") {
			// Legacy unpaginated contract: the bare sorted array.
			writeJSON(w, http.StatusOK, b.Runs())
			return
		}
		status := q.Get("status")
		switch status {
		case "", "active", "deferred", "done", "failed":
		default:
			httpError(w, http.StatusBadRequest, fmt.Errorf("status: unknown %q (want active, deferred, done or failed)", status))
			return
		}
		limit := 0
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("limit: want a positive integer, got %q", s))
				return
			}
			limit = n
		}
		after := q.Get("after")
		var page runsPage
		page.Runs = []shard.RunInfo{}
		for _, info := range b.Runs() { // sorted by ID: the cursor order
			if after != "" && info.ID <= after {
				continue
			}
			if status != "" && info.Status != status {
				continue
			}
			if limit > 0 && len(page.Runs) == limit {
				// One past the page: the previous entry is not the last
				// match, so hand out a resume cursor.
				page.Next = page.Runs[limit-1].ID
				break
			}
			page.Runs = append(page.Runs, info)
		}
		writeJSON(w, http.StatusOK, page)
	})

	mux.handle("GET", "/api/v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := b.RunInfo(r.PathValue("id"))
		if err != nil {
			serviceError(w, b, err)
			return
		}
		if r.URL.Query().Get("trace") == "1" {
			trace := b.Trace(info.ID)
			if trace == nil {
				trace = []wlog.InstanceID{}
			}
			writeJSON(w, http.StatusOK, tracedRunInfo{RunInfo: info, Trace: trace})
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.handle("POST", "/api/v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		var req alertRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("body: %w", err))
			return
		}
		toIDs := func(ss []string) []wlog.InstanceID {
			ids := make([]wlog.InstanceID, len(ss))
			for i, s := range ss {
				ids[i] = wlog.InstanceID(s)
			}
			return ids
		}
		alerts := make([]triage.Alert, 0, len(req.Batch)+1)
		if len(req.Bad) > 0 {
			alerts = append(alerts, triage.Alert{Bad: toIDs(req.Bad)})
		}
		for _, bad := range req.Batch {
			alerts = append(alerts, triage.Alert{Bad: toIDs(bad)})
		}
		if len(alerts) == 0 {
			serviceError(w, b, fmt.Errorf("alert names no instances: %w", engine.ErrBadSpec))
			return
		}
		admitted, dropped, err := b.ReportAlerts(alerts)
		if err != nil {
			serviceError(w, b, err)
			return
		}
		if admitted == 0 {
			// The whole batch was lost to the bounded queue: real
			// backpressure, with a Retry-After derived from the queue depth
			// and the measured drain rate.
			serviceError(w, b, fmt.Errorf("shard: alert queue full (capacity dropped %d alerts): %w", dropped, shard.ErrQueueFull))
			return
		}
		if dropped > 0 {
			// Partial admission: report success but hint the reporter to
			// pace the rest.
			w.Header().Set("Retry-After", strconv.Itoa(b.RetryAfterSeconds()))
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"status":   "queued",
			"admitted": admitted,
			"dropped":  dropped,
			"state":    b.StateString(),
		})
	})

	mux.handle("GET", "/api/v1/state", func(w http.ResponseWriter, _ *http.Request) {
		var resp stateResponse
		resp.State = b.StateString()
		resp.Queues.Alerts, resp.Queues.Units, resp.Queues.Deferred = b.QueueLengths()
		resp.Metrics = b.MetricsDoc()
		resp.Runs = b.Runs()
		writeJSON(w, http.StatusOK, resp)
	})

	mux.handle("GET", "/api/v1/store", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, b.StoreSnapshot())
	})

	mux.handle("GET", "/api/v1/openapi.json", handleOpenAPI(families...))
}

// serviceError maps the execution layers' sentinel errors onto status codes
// and writes the error envelope. 429s carry a Retry-After derived from the
// service's current alert-queue depth and measured drain rate instead of a
// fixed constant, so a storming reporter backs off proportionally to the
// actual congestion.
func serviceError(w http.ResponseWriter, b Backend, err error) {
	switch {
	case errors.Is(err, engine.ErrBadSpec):
		httpError(w, http.StatusBadRequest, err)
	case errors.Is(err, engine.ErrUnknownRun):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, engine.ErrRunExists):
		httpError(w, http.StatusConflict, err)
	case errors.Is(err, shard.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(b.RetryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing sensible to do but note it for the
		// request log.
		_ = err
	}
}
