package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"selfheal/internal/shard"
	"selfheal/internal/wlog"
)

func waitIdleSvc(t *testing.T, svc *shard.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRunsPagination drives the cursor protocol of GET /api/v1/runs: the
// parameterless request keeps the legacy bare-array shape, query parameters
// switch to the {runs, next} page document, and following next re-assembles
// the full listing without gaps or repeats.
func TestRunsPagination(t *testing.T) {
	ts, svc := v1ServerCfg(t, shard.Config{Shards: 2})
	for i := 1; i <= 5; i++ {
		id := fmt.Sprintf("p%d", i)
		resp, body := doJSON(t, "POST", ts.URL+"/api/v1/runs",
			map[string]any{"id": id, "spec": chainSpecJSON(id, 2)})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %s: status %d: %s", id, resp.StatusCode, body)
		}
	}
	waitIdleSvc(t, svc)

	// Legacy contract: no query parameters means the bare sorted array.
	resp, body := doJSON(t, "GET", ts.URL+"/api/v1/runs", nil)
	var bare []shard.RunInfo
	if err := json.Unmarshal(body, &bare); err != nil {
		t.Fatalf("parameterless listing is not a bare array: %v (%s)", err, body)
	}
	if resp.StatusCode != http.StatusOK || len(bare) != 5 {
		t.Fatalf("bare listing: status %d, %d runs, want 200/5", resp.StatusCode, len(bare))
	}

	var page struct {
		Runs []shard.RunInfo `json:"runs"`
		Next string          `json:"next"`
	}
	getPage := func(url string) {
		t.Helper()
		resp, body := doJSON(t, "GET", url, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
		}
		page = struct {
			Runs []shard.RunInfo `json:"runs"`
			Next string          `json:"next"`
		}{}
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatalf("GET %s: %v (%s)", url, err, body)
		}
	}

	// Walk the cursor: 2 + 2 + 1, and the run IDs reassemble the full set.
	var walked []string
	url := ts.URL + "/api/v1/runs?limit=2"
	for hops := 0; ; hops++ {
		if hops > 5 {
			t.Fatal("cursor never terminated")
		}
		getPage(url)
		if len(page.Runs) > 2 {
			t.Fatalf("page over limit: %d runs", len(page.Runs))
		}
		for _, r := range page.Runs {
			walked = append(walked, r.ID)
		}
		if page.Next == "" {
			break
		}
		if page.Next != page.Runs[len(page.Runs)-1].ID {
			t.Fatalf("next %q is not the last run of the page", page.Next)
		}
		url = ts.URL + "/api/v1/runs?limit=2&after=" + page.Next
	}
	want := []string{"p1", "p2", "p3", "p4", "p5"}
	if len(walked) != len(want) {
		t.Fatalf("walked %v, want %v", walked, want)
	}
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("walked %v, want %v", walked, want)
		}
	}

	// Status filtering: everything is done, nothing failed.
	getPage(ts.URL + "/api/v1/runs?status=done")
	if len(page.Runs) != 5 {
		t.Fatalf("status=done: %d runs, want 5", len(page.Runs))
	}
	getPage(ts.URL + "/api/v1/runs?status=failed")
	if len(page.Runs) != 0 || page.Next != "" {
		t.Fatalf("status=failed: %+v, want empty page", page)
	}

	// Invalid parameters are a 400 in the envelope.
	for _, q := range []string{"?status=bogus", "?limit=0", "?limit=-3", "?limit=x"} {
		resp, body := doJSON(t, "GET", ts.URL+"/api/v1/runs"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET runs%s: status %d, want 400", q, resp.StatusCode)
		}
		if code := envelopeCode(t, body); code != "bad_request" {
			t.Fatalf("GET runs%s: code %q, want bad_request", q, code)
		}
	}
}

// TestRunTrace checks ?trace=1 on GET /api/v1/runs/{id}: the response gains
// the run's committed instance IDs — exactly the identifiers POST
// /api/v1/alerts accepts — and the plain request stays untouched.
func TestRunTrace(t *testing.T) {
	ts, svc := v1ServerCfg(t, shard.Config{Shards: 2})
	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/runs",
		map[string]any{"id": "tr", "spec": chainSpecJSON("tr", 3)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	waitIdleSvc(t, svc)

	resp, body = doJSON(t, "GET", ts.URL+"/api/v1/runs/tr?trace=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d: %s", resp.StatusCode, body)
	}
	var traced struct {
		ID     string   `json:"id"`
		Status string   `json:"status"`
		Trace  []string `json:"trace"`
	}
	if err := json.Unmarshal(body, &traced); err != nil {
		t.Fatal(err)
	}
	if traced.ID != "tr" || traced.Status != "done" {
		t.Fatalf("traced info: %+v", traced)
	}
	if len(traced.Trace) != 3 {
		t.Fatalf("trace has %d instances, want 3: %v", len(traced.Trace), traced.Trace)
	}
	for i, id := range traced.Trace {
		run, task, visit, err := wlog.ParseInstance(wlog.InstanceID(id))
		if err != nil {
			t.Fatalf("trace[%d] = %q: %v", i, id, err)
		}
		if run != "tr" || visit != 1 || string(task) != fmt.Sprintf("t%d", i+1) {
			t.Fatalf("trace[%d] = %q, want tr/t%d#1", i, id, i+1)
		}
	}

	// A traced ID round-trips into an accepted alert.
	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/alerts",
		map[string]any{"bad": []string{traced.Trace[0]}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alert on traced ID: status %d: %s", resp.StatusCode, body)
	}
	waitIdleSvc(t, svc)

	// Without trace=1 the response stays the plain run document.
	_, body = doJSON(t, "GET", ts.URL+"/api/v1/runs/tr", nil)
	var plain map[string]any
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if _, ok := plain["trace"]; ok {
		t.Fatalf("plain run document grew a trace field: %s", body)
	}
}

// TestAlertIDValidation pins the 400-vs-404 contract of POST /api/v1/alerts:
// a malformed instance ID (not run/task#visit) is a bad_request; a
// well-formed ID naming an instance absent from the log is a not_found.
func TestAlertIDValidation(t *testing.T) {
	ts, _ := v1Server(t)

	for _, bad := range []string{"notaninstance", "r:t:1", "/t#1", "r/#1", "r/t#", "r/t#0", "r/t#x"} {
		resp, body := doJSON(t, "POST", ts.URL+"/api/v1/alerts",
			map[string]any{"bad": []string{bad}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed %q: status %d, want 400: %s", bad, resp.StatusCode, body)
		}
		if code := envelopeCode(t, body); code != "bad_request" {
			t.Fatalf("malformed %q: code %q, want bad_request", bad, code)
		}
	}

	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/alerts",
		map[string]any{"bad": []string{"ghost/t1#1"}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown instance: status %d, want 404: %s", resp.StatusCode, body)
	}
	if code := envelopeCode(t, body); code != "not_found" {
		t.Fatalf("unknown instance: code %q, want not_found", code)
	}

	// A malformed ID anywhere in a batch rejects the whole batch as a 400.
	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/alerts",
		map[string]any{"batch": [][]string{{"ghost/t1#1"}, {"r/t#0"}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch with malformed ID: status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestAlertPartialDropRetryAfter stops the service's consumers so the
// bounded alert queue is observable, then overflows it with one batch: the
// 202 must carry the admitted/dropped split and a Retry-After pacing hint.
func TestAlertPartialDropRetryAfter(t *testing.T) {
	ts, svc := v1ServerCfg(t, shard.Config{Shards: 1, AlertBuf: 2})
	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/runs",
		map[string]any{"id": "r1", "spec": chainSpecJSON("r1", 3)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	waitIdleSvc(t, svc)
	// With the workers stopped nothing drains the alert queue, so the
	// bound — and the partial drop — is deterministic.
	svc.Stop()

	inst := string(wlog.FormatInstance("r1", "t1", 1))
	batch := make([][]string, 4)
	for i := range batch {
		batch[i] = []string{inst}
	}
	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/alerts", map[string]any{"batch": batch})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("partial drop: status %d, want 202: %s", resp.StatusCode, body)
	}
	var out struct {
		Admitted int `json:"admitted"`
		Dropped  int `json:"dropped"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Admitted != 2 || out.Dropped != 2 {
		t.Fatalf("admitted %d dropped %d, want 2/2", out.Admitted, out.Dropped)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("partial drop: no Retry-After header")
	}
	var sec int
	if _, err := fmt.Sscanf(ra, "%d", &sec); err != nil || sec < 1 || sec > 60 {
		t.Fatalf("Retry-After %q, want an integer in [1,60]", ra)
	}

	// The queue is now full: the next whole batch is dropped — a 429 with
	// the same pacing header.
	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/alerts", map[string]any{"bad": []string{inst}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429: %s", resp.StatusCode, body)
	}
	if code := envelopeCode(t, body); code != "queue_full" {
		t.Fatalf("full queue: code %q, want queue_full", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestOpenAPISurface checks the generated document describes exactly the
// mounted surface: the plain server has no chaos paths, the chaos server
// gains them, and the pagination/trace parameters are declared.
func TestOpenAPISurface(t *testing.T) {
	type doc struct {
		OpenAPI string                    `json:"openapi"`
		Paths   map[string]map[string]any `json:"paths"`
	}
	fetch := func(url string) doc {
		t.Helper()
		resp, body := doJSON(t, "GET", url+"/api/v1/openapi.json", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("openapi: status %d: %s", resp.StatusCode, body)
		}
		var d doc
		if err := json.Unmarshal(body, &d); err != nil {
			t.Fatal(err)
		}
		return d
	}

	ts, _ := v1Server(t)
	d := fetch(ts.URL)
	if d.OpenAPI != "3.1.0" {
		t.Fatalf("openapi version %q", d.OpenAPI)
	}
	for _, p := range []string{
		"/api/v1/runs", "/api/v1/runs/{id}", "/api/v1/alerts",
		"/api/v1/state", "/api/v1/store", "/api/v1/openapi.json",
	} {
		if _, ok := d.Paths[p]; !ok {
			t.Fatalf("openapi missing %s (have %d paths)", p, len(d.Paths))
		}
	}
	for p := range d.Paths {
		if len(p) < 8 || p[:8] != "/api/v1/" {
			t.Fatalf("openapi leaked unversioned path %s", p)
		}
		if len(p) >= 14 && p[:14] == "/api/v1/chaos/" {
			t.Fatalf("plain server documents chaos path %s", p)
		}
	}
	// The listing route declares its pagination parameters.
	runsGet, ok := d.Paths["/api/v1/runs"]["get"].(map[string]any)
	if !ok {
		t.Fatal("openapi: no get on /api/v1/runs")
	}
	params, _ := runsGet["parameters"].([]any)
	names := map[string]bool{}
	for _, p := range params {
		m, _ := p.(map[string]any)
		name, _ := m["name"].(string)
		names[name] = true
	}
	for _, want := range []string{"status", "limit", "after"} {
		if !names[want] {
			t.Fatalf("openapi: GET /api/v1/runs missing parameter %q (have %v)", want, names)
		}
	}

	cts := chaosServer(t, shard.Config{Shards: 1})
	cd := fetch(cts.URL)
	if _, ok := cd.Paths["/api/v1/chaos/forge"]; !ok {
		t.Fatal("chaos server's openapi missing /api/v1/chaos/forge")
	}
	if _, ok := cd.Paths["/api/v1/chaos/verify"]; !ok {
		t.Fatal("chaos server's openapi missing /api/v1/chaos/verify")
	}
}

// TestRouteTableGate pins the structural drift gates: registering a route
// the table does not declare panics, as does building a server that fails
// to mount a declared route of its families.
func TestRouteTableGate(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("undeclared route", func() {
		m := newAPIMux(FamV1)
		m.handle("GET", "/api/v1/undeclared", func(http.ResponseWriter, *http.Request) {})
	})
	mustPanic("wrong family", func() {
		m := newAPIMux(FamV1)
		m.handle("GET", "/api/v1/cluster", func(http.ResponseWriter, *http.Request) {})
	})
	mustPanic("unmounted declared route", func() {
		m := newAPIMux(FamLegacy)
		m.handle("GET", "/healthz", handleHealth)
		m.finish() // five more legacy routes were never mounted
	})
}
