package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"selfheal/internal/obs"
	"selfheal/internal/shard"
)

// The chaos surface (docs/FUZZING.md): white-box hooks the stateful API
// fuzzer (cmd/selfheal-fuzz) uses to attack and interrogate a live service.
// The routes expose exactly what an in-process test harness would reach for
// — forged commits, forced checkpoints, the committed log, and the global
// soundness verdicts — so the fuzzer can drive a real server over HTTP and
// still check oracles that need internal state. They are mounted only by
// ServerWithChaos (and cluster nodes booted for testing) and must never be
// enabled on a production service.
//
//	POST /api/v1/chaos/forge       commit a forged task instance (attack)
//	POST /api/v1/chaos/checkpoint  force a durable snapshot now
//	POST /api/v1/chaos/drain       block until recovery drains (or runs idle)
//	GET  /api/v1/chaos/log         committed log entries (lsn, id, forged)
//	GET  /api/v1/chaos/verify      check-index + Theorem-3 audit verdicts

// ServerWithChaos returns Server's route set plus the chaos surface.
func ServerWithChaos(reg *obs.Registry, svc *shard.Service) http.Handler {
	b := shardBackend{svc: svc}
	fams := []string{FamLegacy, FamV1, FamChaos}
	return assemble(reg, fams, func(m *apiMux) {
		legacyRoutes(m)
		v1Routes(m, b, fams)
		chaosRoutes(m, b)
	})
}

// forgeRequest is the POST /api/v1/chaos/forge document: the forged task
// reads the named keys' latest versions and commits the given writes, as if
// an attacker executed an unauthorized task (§II.B).
type forgeRequest struct {
	// Run names the workflow run the forged instance claims to belong to.
	Run string `json:"run"`
	// Task is the forged task's name; it need not exist in any spec.
	Task string `json:"task"`
	// Reads lists keys whose current versions the forged task observes,
	// creating the data dependences damage assessment will chase.
	Reads []string `json:"reads,omitempty"`
	// Writes maps each corrupted key to the forged value.
	Writes map[string]int64 `json:"writes"`
}

func chaosRoutes(mux *apiMux, cb ChaosBackend) {
	mux.handle("POST", "/api/v1/chaos/forge", func(w http.ResponseWriter, r *http.Request) {
		var req forgeRequest
		if err := decodeStrict(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if req.Task == "" || len(req.Writes) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("forge needs a task name and at least one write"))
			return
		}
		inst, err := cb.InjectForged(req.Run, req.Task, req.Reads, req.Writes)
		if err != nil {
			serviceError(w, cb, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{"instance": string(inst)})
	})

	mux.handle("POST", "/api/v1/chaos/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if err := cb.Checkpoint(r.Context()); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})

	mux.handle("POST", "/api/v1/chaos/drain", func(w http.ResponseWriter, r *http.Request) {
		timeout := 10 * time.Second
		if s := r.URL.Query().Get("timeout"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil || d <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("timeout: invalid %q", s))
				return
			}
			timeout = d
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		var err error
		switch wait := r.URL.Query().Get("wait"); wait {
		case "", "idle":
			// All runs retired and recovery fully drained: the quiescent
			// point at which the fuzzer's global oracles are defined.
			err = cb.WaitIdle(ctx)
		case "recovery":
			err = cb.DrainRecovery(ctx)
		default:
			httpError(w, http.StatusBadRequest, fmt.Errorf("wait: unknown mode %q (want idle or recovery)", wait))
			return
		}
		if err != nil {
			httpError(w, http.StatusConflict, fmt.Errorf("drain: %w", err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "state": cb.StateString()})
	})

	mux.handle("GET", "/api/v1/chaos/log", func(w http.ResponseWriter, _ *http.Request) {
		base, entries := cb.LogDoc()
		if entries == nil {
			entries = []LogEntry{}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"base":    base,
			"entries": entries,
		})
	})

	mux.handle("GET", "/api/v1/chaos/verify", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, cb.VerifyDoc())
	})
}

// decodeStrict decodes a JSON request body rejecting unknown fields.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("body: %w", err)
	}
	return nil
}
