package httpapi

import (
	"net/http"

	"selfheal/internal/obs"
)

// ClusterNode is the surface a cluster member exposes to the public API:
// the full chaos-capable backend plus the topology document. The concrete
// implementation is internal/cluster.Node; the interface keeps httpapi free
// of a cluster dependency (the import runs the other way).
type ClusterNode interface {
	ChaosBackend
	// ClusterDoc reports membership, the sequencer identity and each
	// member's replication health (GET /api/v1/cluster).
	ClusterDoc() any
}

// ClusterServer assembles the client-facing handler of one cluster node:
// the legacy analysis surface, the stable v1 API, the chaos surface (the
// cluster equivalence fuzz harness drives nodes through it) and the cluster
// topology route. Mount it next to Node.InternalHandler on the same
// listener.
func ClusterServer(reg *obs.Registry, node ClusterNode) http.Handler {
	fams := []string{FamLegacy, FamV1, FamChaos, FamCluster}
	return assemble(reg, fams, func(m *apiMux) {
		legacyRoutes(m)
		v1Routes(m, node, fams)
		chaosRoutes(m, node)
		m.handle("GET", "/api/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, node.ClusterDoc())
		})
	})
}
