package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"selfheal/internal/shard"
	"selfheal/internal/wfjson"
)

func chainSpecJSON(name string, n int) wfjson.SpecJSON {
	sj := wfjson.SpecJSON{Name: name, Start: "t1"}
	for i := 1; i <= n; i++ {
		tj := wfjson.TaskJSON{
			ID:     fmt.Sprintf("t%d", i),
			Writes: []string{fmt.Sprintf("%s.k%d", name, i)},
			Bias:   int64(i),
		}
		if i > 1 {
			tj.Reads = []string{fmt.Sprintf("%s.k%d", name, i-1)}
		}
		if i < n {
			tj.Next = []string{fmt.Sprintf("t%d", i+1)}
		}
		sj.Tasks = append(sj.Tasks, tj)
	}
	return sj
}

func v1Server(t *testing.T) (*httptest.Server, *shard.Service) {
	return v1ServerCfg(t, shard.Config{Shards: 2, AlertBuf: 1})
}

func v1ServerCfg(t *testing.T, cfg shard.Config) (*httptest.Server, *shard.Service) {
	t.Helper()
	svc, err := shard.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	t.Cleanup(svc.Stop)
	ts := httptest.NewServer(Server(nil, svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// envelopeCode decodes the error envelope and returns its code, failing the
// test if the body is not the canonical envelope shape.
func envelopeCode(t *testing.T, body []byte) string {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not the envelope: %v (%s)", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", body)
	}
	return env.Error.Code
}

func TestV1RunLifecycle(t *testing.T) {
	ts, _ := v1Server(t)

	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/runs",
		map[string]any{"id": "r1", "spec": chainSpecJSON("w", 5)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	var info shard.RunInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "r1" {
		t.Fatalf("submit response: %+v", info)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = doJSON(t, "GET", ts.URL+"/api/v1/runs/r1", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get run: status %d body %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never completed: %+v", info)
		}
		time.Sleep(time.Millisecond)
	}
	if info.Steps != 5 {
		t.Fatalf("run steps = %d, want 5", info.Steps)
	}

	resp, body = doJSON(t, "GET", ts.URL+"/api/v1/runs", nil)
	var list []shard.RunInfo
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &list) != nil || len(list) != 1 {
		t.Fatalf("list runs: status %d body %s", resp.StatusCode, body)
	}
}

func TestV1ErrorEnvelopes(t *testing.T) {
	ts, svc := v1Server(t)

	// 404 with envelope for an unknown run.
	resp, body := doJSON(t, "GET", ts.URL+"/api/v1/runs/ghost", nil)
	if resp.StatusCode != http.StatusNotFound || envelopeCode(t, body) != "not_found" {
		t.Fatalf("unknown run: status %d body %s", resp.StatusCode, body)
	}

	// 400 for an invalid spec.
	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/runs", map[string]any{
		"id":   "bad",
		"spec": wfjson.SpecJSON{Name: "bad", Start: "missing"},
	})
	if resp.StatusCode != http.StatusBadRequest || envelopeCode(t, body) != "bad_request" {
		t.Fatalf("bad spec: status %d body %s", resp.StatusCode, body)
	}

	// 409 for a duplicate run ID.
	submit := map[string]any{"id": "dup", "spec": chainSpecJSON("d", 2)}
	if resp, body = doJSON(t, "POST", ts.URL+"/api/v1/runs", submit); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: status %d body %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/runs", submit)
	if resp.StatusCode != http.StatusConflict || envelopeCode(t, body) != "run_exists" {
		t.Fatalf("dup run: status %d body %s", resp.StatusCode, body)
	}

	// 404 for an alert naming an unlogged instance.
	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/alerts", map[string]any{"bad": []string{"ghost/t1#1"}})
	if resp.StatusCode != http.StatusNotFound || envelopeCode(t, body) != "not_found" {
		t.Fatalf("unknown instance alert: status %d body %s", resp.StatusCode, body)
	}

	// 429 with envelope and Retry-After once the alert queue (capacity 1)
	// is full. The service is stopped first so the recovery worker cannot
	// drain the queue mid-test.
	waitNormal(t, ts, 1)
	svc.Stop()
	alert := map[string]any{"bad": []string{"dup/t1#1"}}
	if resp, body = doJSON(t, "POST", ts.URL+"/api/v1/alerts", alert); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first alert: status %d body %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/alerts", alert)
	if resp.StatusCode != http.StatusTooManyRequests || envelopeCode(t, body) != "queue_full" {
		t.Fatalf("overflow alert: status %d body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestV1RetryAfterScalesWithQueueDepth: the 429 Retry-After is derived from
// the current alert-queue depth and drain rate, not a hardcoded constant —
// a 40-deep queue at the default drain estimate (50 ms/alert) needs 2 s.
func TestV1RetryAfterScalesWithQueueDepth(t *testing.T) {
	ts, svc := v1ServerCfg(t, shard.Config{Shards: 1, AlertBuf: 40})
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/runs",
		map[string]any{"id": "r1", "spec": chainSpecJSON("w", 2)}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	waitNormal(t, ts, 1)
	// Stop the service so the recovery worker cannot drain while the queue
	// fills; the estimator then sees the full depth.
	svc.Stop()
	batch := make([][]string, 40)
	for i := range batch {
		batch[i] = []string{"r1/t1#1"}
	}
	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/alerts", map[string]any{"batch": batch})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch fill: status %d body %s", resp.StatusCode, body)
	}
	var ack struct{ Admitted, Dropped int }
	if err := json.Unmarshal(body, &ack); err != nil || ack.Admitted != 40 || ack.Dropped != 0 {
		t.Fatalf("batch fill ack = %s (err %v)", body, err)
	}
	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/alerts", map[string]any{"bad": []string{"r1/t1#1"}})
	if resp.StatusCode != http.StatusTooManyRequests || envelopeCode(t, body) != "queue_full" {
		t.Fatalf("overflow: status %d body %s", resp.StatusCode, body)
	}
	want := shard.EstimateRetryAfter(40, shard.DefaultDrainSecPerAlert)
	if want <= 1 {
		t.Fatalf("test premise broken: want Retry-After > 1, got %d", want)
	}
	if got := resp.Header.Get("Retry-After"); got != fmt.Sprint(want) {
		t.Fatalf("Retry-After = %q, want %d (queue-depth-derived, not hardcoded)", got, want)
	}
}

// TestV1AlertBatchAdmission drives the batch form of POST /api/v1/alerts:
// all-upfront validation, then admission with per-batch accounting.
func TestV1AlertBatchAdmission(t *testing.T) {
	ts, svc := v1ServerCfg(t, shard.Config{Shards: 2, AlertBuf: 8})
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/runs",
		map[string]any{"id": "r1", "spec": chainSpecJSON("w", 4)}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	waitNormal(t, ts, 1)

	// One unknown instance rejects the whole batch — nothing admitted.
	before := svc.Metrics().AlertsReported
	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/alerts",
		map[string]any{"batch": [][]string{{"r1/t1#1"}, {"ghost/t9#9"}}})
	if resp.StatusCode != http.StatusNotFound || envelopeCode(t, body) != "not_found" {
		t.Fatalf("invalid batch: status %d body %s", resp.StatusCode, body)
	}
	if got := svc.Metrics().AlertsReported; got != before {
		t.Fatalf("rejected batch still counted reported: %d -> %d", before, got)
	}

	// A valid batch is admitted in one request and recovered.
	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/alerts",
		map[string]any{"batch": [][]string{{"r1/t1#1"}, {"r1/t2#1"}, {"r1/t3#1"}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch: status %d body %s", resp.StatusCode, body)
	}
	var ack struct {
		Admitted, Dropped int
		Status            string
	}
	if err := json.Unmarshal(body, &ack); err != nil || ack.Admitted != 3 || ack.Dropped != 0 || ack.Status != "queued" {
		t.Fatalf("batch ack = %s (err %v)", body, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := waitNormal(t, ts, 1)
		if st.Metrics.UnitsExecuted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch recovery never executed: %+v", st.Metrics)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitNormal polls /api/v1/state until the service is NORMAL with the given
// number of completed runs.
func waitNormal(t *testing.T, ts *httptest.Server, runsDone int) stateResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := doJSON(t, "GET", ts.URL+"/api/v1/state", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("state: status %d body %s", resp.StatusCode, body)
		}
		var st stateResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "NORMAL" && st.Metrics.RunsCompleted >= runsDone {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never settled: %s", body)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestV1AlertRecoveryFlow drives the full loop through the wire: submit a
// run, report one of its committed instances, and observe the recovery in
// /api/v1/state.
func TestV1AlertRecoveryFlow(t *testing.T) {
	ts, _ := v1Server(t)
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/runs",
		map[string]any{"id": "r1", "spec": chainSpecJSON("w", 4)}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	waitNormal(t, ts, 1)

	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/alerts", map[string]any{"bad": []string{"r1/t2#1"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alert: status %d body %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := waitNormal(t, ts, 1)
		if st.Metrics.UnitsExecuted >= 1 {
			if st.Metrics.Undone < 1 || st.Metrics.Redone < 1 {
				t.Fatalf("recovery executed without undo/redo work: %+v", st.Metrics)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery never executed: %+v", st.Metrics)
		}
		time.Sleep(time.Millisecond)
	}
}
