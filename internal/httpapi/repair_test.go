package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
	"selfheal/internal/wlogio"
)

// fig1SpecJSON is the declarative form of the Figure 1 main workflow (the
// same data flow wfjson's SumCompute/ThresholdChoose semantics produce).
var fig1SpecJSON = wfjson.SpecJSON{
	Name: "wf1", Start: "t1",
	Init: map[string]int64{"e": 0},
	Tasks: []wfjson.TaskJSON{
		{ID: "t1", Writes: []string{"a"}, Bias: 1, Next: []string{"t2"}},
		{ID: "t2", Reads: []string{"a"}, Writes: []string{"b"}, Bias: 1, Next: []string{"t3", "t5"},
			Choose: &wfjson.ChooseJSON{Key: "a", Threshold: 50, Low: "t5", High: "t3"}},
		{ID: "t3", Writes: []string{"c"}, Bias: 42, Next: []string{"t4"}},
		{ID: "t4", Reads: []string{"b", "c"}, Writes: []string{"d"}, Next: []string{"t6"}},
		{ID: "t5", Reads: []string{"b"}, Writes: []string{"e"}, Bias: 5, Next: []string{"t6"}},
		{ID: "t6", Reads: []string{"e"}, Writes: []string{"f"}, Bias: 7},
	},
}

// buildAttackedSnapshot executes the JSON spec under attack and snapshots it.
func buildAttackedSnapshot(t *testing.T) []byte {
	t.Helper()
	spec, init, err := wfjson.Build(&fig1SpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	st := data.NewStore()
	for k, v := range init {
		st.Init(k, v)
	}
	eng := engine.New(st, wlog.New())
	eng.AddAttack(engine.Attack{
		Run: "main", Task: "t1",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"a": 100}
		},
	})
	r, err := eng.NewRun("main", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wlogio.Encode(&buf, eng.Log(), eng.Store()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postRepair(t *testing.T, srv *httptest.Server, body any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/repair", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestRepairEndpoint(t *testing.T) {
	srv := newServer(t)
	snapshot := buildAttackedSnapshot(t)
	code, body := postRepair(t, srv, map[string]any{
		"snapshot": json.RawMessage(snapshot),
		"specs":    []wfjson.SpecJSON{fig1SpecJSON},
		"runs":     map[string]string{"main": "wf1"},
		"bad":      []string{"main/t1#1"},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Undone      []string         `json:"undone"`
		NewExecuted []string         `json:"newExecuted"`
		Verified    bool             `json:"verified"`
		FinalState  map[string]int64 `json:"finalState"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Verified {
		t.Error("remote repair not verified")
	}
	if len(resp.Undone) != 5 {
		t.Errorf("undone = %v, want 5 instances", resp.Undone)
	}
	if len(resp.NewExecuted) != 1 || resp.NewExecuted[0] != "main/t5#1" {
		t.Errorf("newExecuted = %v", resp.NewExecuted)
	}
	if resp.FinalState["f"] != 14 || resp.FinalState["a"] != 1 {
		t.Errorf("final state = %v", resp.FinalState)
	}
	if _, stale := resp.FinalState["c"]; stale {
		t.Error("wrong-path output survived remote repair")
	}
}

func TestRepairEndpointErrors(t *testing.T) {
	srv := newServer(t)
	snapshot := buildAttackedSnapshot(t)

	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"missing snapshot", map[string]any{
			"specs": []wfjson.SpecJSON{fig1SpecJSON},
			"runs":  map[string]string{"main": "wf1"},
		}, http.StatusBadRequest},
		{"unknown spec name", map[string]any{
			"snapshot": json.RawMessage(snapshot),
			"specs":    []wfjson.SpecJSON{fig1SpecJSON},
			"runs":     map[string]string{"main": "ghost"},
		}, http.StatusBadRequest},
		{"unknown bad instance", map[string]any{
			"snapshot": json.RawMessage(snapshot),
			"specs":    []wfjson.SpecJSON{fig1SpecJSON},
			"runs":     map[string]string{"main": "wf1"},
			"bad":      []string{"main/ghost#1"},
		}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, body := postRepair(t, srv, c.body)
			if code != c.want {
				t.Errorf("status %d, want %d (%s)", code, c.want, body)
			}
		})
	}

	// Malformed JSON body.
	resp, err := srv.Client().Post(srv.URL+"/repair", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d", resp.StatusCode)
	}
}
