package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"selfheal/internal/shard"
)

func chaosServer(t *testing.T, cfg shard.Config) *httptest.Server {
	t.Helper()
	svc, err := shard.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	t.Cleanup(svc.Stop)
	ts := httptest.NewServer(ServerWithChaos(nil, svc))
	t.Cleanup(ts.Close)
	return ts
}

// The chaos surface drives a full attack-and-repair round over HTTP: forge
// a corrupting instance, alert it, drain, and verify the soundness
// verdicts.
func TestChaosForgeAlertVerify(t *testing.T) {
	ts := chaosServer(t, shard.Config{Shards: 2, AuditRepairs: true})

	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/runs",
		map[string]any{"id": "r1", "spec": chainSpecJSON("w", 4)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}

	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/chaos/forge", map[string]any{
		"run": "atk1", "task": "x",
		"reads":  []string{"w.k1"},
		"writes": map[string]int64{"w.k1": 9999},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("forge: status %d body %s", resp.StatusCode, body)
	}
	var forged struct {
		Instance string `json:"instance"`
	}
	if err := json.Unmarshal(body, &forged); err != nil {
		t.Fatal(err)
	}
	if forged.Instance != "atk1/x#1" {
		t.Fatalf("forged instance %q, want atk1/x#1", forged.Instance)
	}

	// The forged entry is visible in the committed log.
	resp, body = doJSON(t, "GET", ts.URL+"/api/v1/chaos/log", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("log: status %d body %s", resp.StatusCode, body)
	}
	var logDoc struct {
		Entries []struct {
			ID     string `json:"id"`
			Forged bool   `json:"forged"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(body, &logDoc); err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, e := range logDoc.Entries {
		seen = seen || (e.ID == "atk1/x#1" && e.Forged)
	}
	if !seen {
		t.Fatalf("forged entry missing from log: %s", body)
	}

	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/alerts",
		map[string]any{"bad": []string{"atk1/x#1"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alert: status %d body %s", resp.StatusCode, body)
	}

	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/chaos/drain?wait=idle&timeout=10s", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d body %s", resp.StatusCode, body)
	}

	resp, body = doJSON(t, "GET", ts.URL+"/api/v1/chaos/verify", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: status %d body %s", resp.StatusCode, body)
	}
	var verdict struct {
		State           string `json:"state"`
		CheckIndex      string `json:"check_index"`
		AuditViolations int    `json:"audit_violations"`
	}
	if err := json.Unmarshal(body, &verdict); err != nil {
		t.Fatal(err)
	}
	if verdict.CheckIndex != "ok" || verdict.AuditViolations != 0 || verdict.State != "NORMAL" {
		t.Fatalf("verify verdict: %s", body)
	}
}

func TestChaosRejectsMalformed(t *testing.T) {
	ts := chaosServer(t, shard.Config{Shards: 1})

	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/chaos/forge",
		map[string]any{"run": "atk1", "task": "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forge without writes: status %d body %s", resp.StatusCode, body)
	}
	envelopeCode(t, body)

	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/chaos/drain?wait=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus wait mode: status %d body %s", resp.StatusCode, body)
	}

	// Checkpoint on a non-durable service is a client error, not a crash.
	resp, body = doJSON(t, "POST", ts.URL+"/api/v1/chaos/checkpoint", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint non-durable: status %d body %s", resp.StatusCode, body)
	}
}

// The chaos surface is opt-in: the plain Server must not mount it.
func TestChaosNotMountedByDefault(t *testing.T) {
	ts, _ := v1Server(t)
	resp, _ := doJSON(t, "GET", ts.URL+"/api/v1/chaos/verify", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("chaos route on plain server: status %d", resp.StatusCode)
	}
}
