package httpapi

import (
	"net/http"
	"regexp"
	"sort"
	"strings"
)

// OpenAPI 3.1 generation. The document is derived from the same route table
// the mux registers from (routes.go), so GET /api/v1/openapi.json describes
// exactly the surface the serving node mounts — no hand-maintained spec to
// drift. Schemas are deliberately coarse (the JSON documents are described
// in docs/API.md); what the generator guarantees is the path/method/
// parameter/status inventory.

var pathVarRe = regexp.MustCompile(`\{([a-zA-Z]+)\}`)

// OpenAPIDoc builds the OpenAPI 3.1 document for the given families.
func OpenAPIDoc(families ...string) map[string]any {
	paths := map[string]any{}
	for _, r := range MountedRoutes(families...) {
		if !strings.HasPrefix(r.Pattern, "/api/v1/") && r.Pattern != "/api/v1" {
			// The unversioned legacy and exposition surfaces are documented
			// in docs/API.md but are outside the versioned contract.
			continue
		}
		op := map[string]any{
			"summary":   r.Summary,
			"responses": responsesOf(r),
		}
		if r.Desc != "" {
			op["description"] = r.Desc
		}
		var params []any
		for _, v := range pathVarRe.FindAllStringSubmatch(r.Pattern, -1) {
			params = append(params, map[string]any{
				"name": v[1], "in": "path", "required": true,
				"schema": map[string]any{"type": "string"},
			})
		}
		for _, p := range r.Params {
			params = append(params, map[string]any{
				"name": p.Name, "in": "query", "required": false,
				"description": p.Desc,
				"schema":      map[string]any{"type": "string"},
			})
		}
		if params != nil {
			op["parameters"] = params
		}
		if r.Body {
			op["requestBody"] = map[string]any{
				"required": true,
				"content": map[string]any{
					"application/json": map[string]any{
						"schema": map[string]any{"type": "object"},
					},
				},
			}
		}
		entry, ok := paths[r.Pattern].(map[string]any)
		if !ok {
			entry = map[string]any{}
			paths[r.Pattern] = entry
		}
		entry[strings.ToLower(r.Method)] = op
	}
	return map[string]any{
		"openapi": "3.1.0",
		"info": map[string]any{
			"title":       "selfheal workflow API",
			"version":     "1",
			"description": "Self-healing workflow system under attacks: run submission, IDS alert delivery, recovery observation. Error responses share the envelope {\"error\": {\"code\", \"message\"}} (docs/API.md).",
		},
		"paths": paths,
		"components": map[string]any{
			"schemas": map[string]any{
				"Error": map[string]any{
					"type": "object",
					"properties": map[string]any{
						"error": map[string]any{
							"type": "object",
							"properties": map[string]any{
								"code":    map[string]any{"type": "string"},
								"message": map[string]any{"type": "string"},
							},
						},
					},
				},
			},
		},
	}
}

func responsesOf(r Route) map[string]any {
	out := make(map[string]any, len(r.Responses))
	codes := make([]string, 0, len(r.Responses))
	for c := range r.Responses {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		resp := map[string]any{"description": r.Responses[c]}
		if c[0] == '4' || c[0] == '5' {
			resp["content"] = map[string]any{
				"application/json": map[string]any{
					"schema": map[string]any{"$ref": "#/components/schemas/Error"},
				},
			}
		}
		out[c] = resp
	}
	return out
}

// handleOpenAPI serves the generated document for a server's families.
func handleOpenAPI(families ...string) http.HandlerFunc {
	doc := OpenAPIDoc(families...)
	return func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, doc)
	}
}
