package httpapi

import (
	"context"

	"selfheal/internal/shard"
	"selfheal/internal/triage"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// Backend is the execution-layer surface the versioned workflow API is
// written against. Two implementations exist: the single-process sharded
// service (shard.Service, via shardBackend) and a cluster node
// (internal/cluster, via ClusterServer) — the same handlers, route table and
// OpenAPI document serve both, which is what makes any cluster node a valid
// entry point for the stable API.
type Backend interface {
	// SubmitRunSpec registers a wfjson workflow run. Errors wrap the
	// engine/shard sentinels for status mapping.
	SubmitRunSpec(id string, spec *wfjson.SpecJSON) error
	// RunInfo returns one run's status; unknown IDs wrap engine.ErrUnknownRun.
	RunInfo(id string) (shard.RunInfo, error)
	// Runs lists every run, sorted by ID.
	Runs() []shard.RunInfo
	// Trace returns a run's committed instance IDs in LSN order, forged
	// included (the ?trace=1 payload).
	Trace(run string) []wlog.InstanceID
	// ReportAlerts admits a validated batch of IDS alerts.
	ReportAlerts(alerts []triage.Alert) (admitted, dropped int, err error)
	// RetryAfterSeconds is the backpressure hint for 429s and partial drops.
	RetryAfterSeconds() int
	// StateString is the §IV.C classification (NORMAL/SCAN/RECOVERY).
	StateString() string
	// QueueLengths returns (alerts queued, recovery units queued, deferred).
	QueueLengths() (int, int, int)
	// MetricsDoc is the cumulative accounting of GET /api/v1/state.
	MetricsDoc() shard.Metrics
	// StoreSnapshot is the committed value of every key.
	StoreSnapshot() map[string]int64
}

// ChaosBackend is the white-box surface behind /api/v1/chaos (fuzzing only).
type ChaosBackend interface {
	Backend
	// InjectForged commits an attacker task outside any specification.
	InjectForged(run, task string, reads []string, writes map[string]int64) (wlog.InstanceID, error)
	// Checkpoint forces a durable snapshot (error when not durable).
	Checkpoint(ctx context.Context) error
	// WaitIdle blocks until all runs retired and recovery drained.
	WaitIdle(ctx context.Context) error
	// DrainRecovery blocks until recovery work drained (runs may step on).
	DrainRecovery(ctx context.Context) error
	// LogDoc returns the committed log (truncation base and entries).
	LogDoc() (base int, entries []LogEntry)
	// VerifyDoc returns the soundness verdicts for the fuzzing oracles.
	VerifyDoc() VerifyDoc
}

// LogEntry is one committed log record in GET /api/v1/chaos/log.
type LogEntry struct {
	LSN    int    `json:"lsn"`
	ID     string `json:"id"`
	Run    string `json:"run,omitempty"`
	Task   string `json:"task"`
	Visit  int    `json:"visit"`
	Forged bool   `json:"forged,omitempty"`
}

// VerifyDoc is the GET /api/v1/chaos/verify document: the global soundness
// verdicts the fuzzer's oracles assert after draining.
type VerifyDoc struct {
	State string `json:"state"`
	// CheckIndex is "ok" or the data.CheckIndex violation text.
	CheckIndex string `json:"check_index"`
	// AuditViolations counts Theorem-3 partial-order violations across all
	// installed repairs (requires repair auditing to be enabled).
	AuditViolations int    `json:"audit_violations"`
	AuditError      string `json:"audit_error,omitempty"`
	RecoveryError   string `json:"recovery_error,omitempty"`
}
