package httpapi

import (
	"fmt"
	"net/http"
	"time"

	"selfheal/internal/obs"
	"selfheal/internal/shard"
)

// ObservedHandler returns the service's routes wired into the observability
// registry: two exposition endpoints —
//
//	GET /metrics   Prometheus text format (hand-rolled, deterministic order)
//	GET /varz      expvar-style key-sorted JSON snapshot
//
// — plus per-route request counters (http_requests_total{route="..."}) and
// an overall latency histogram (http_request_seconds). The metric catalog
// is docs/OBSERVABILITY.md. A nil registry returns the uninstrumented
// routes, identical to Handler.
func ObservedHandler(reg *obs.Registry) http.Handler {
	return observed(reg, nil)
}

// observed assembles the mux for Handler, ObservedHandler, Server and
// ServerWithChaos; extra mounts additional route sets (the chaos surface)
// before instrumentation wraps the mux.
func observed(reg *obs.Registry, svc *shard.Service, extra ...func(*http.ServeMux, *shard.Service)) http.Handler {
	mux := baseMux(svc)
	for _, mount := range extra {
		mount(mux, svc)
	}
	if reg == nil {
		return mux
	}
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	})
	mux.HandleFunc("GET /varz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	})
	reqSeconds := reg.Histogram(obs.MHTTPRequestSeconds, obs.LatencyBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, pattern := mux.Handler(r)
		if pattern == "" {
			pattern = "unmatched"
		}
		start := time.Now()
		mux.ServeHTTP(w, r)
		reqSeconds.Observe(time.Since(start).Seconds())
		reg.Counter(fmt.Sprintf("%s{route=%q}", obs.MHTTPRequests, pattern)).Inc()
	})
}
