package httpapi

import (
	"fmt"
	"net/http"
	"time"

	"selfheal/internal/obs"
)

// ObservedHandler returns the analysis routes wired into the observability
// registry: two exposition endpoints —
//
//	GET /metrics   Prometheus text format (hand-rolled, deterministic order)
//	GET /varz      expvar-style key-sorted JSON snapshot
//
// — plus per-route request counters (http_requests_total{route="..."}) and
// an overall latency histogram (http_request_seconds). The metric catalog
// is docs/OBSERVABILITY.md. A nil registry returns the uninstrumented
// routes, identical to Handler.
func ObservedHandler(reg *obs.Registry) http.Handler {
	return assemble(reg, []string{FamLegacy}, func(m *apiMux) { legacyRoutes(m) })
}

// assemble builds every server variant: a route-table-checked mux for the
// given families, the caller's mounts, the exposition endpoints when a
// registry is attached, and the instrumentation wrapper. finish() panics if
// any declared route of the families was not mounted, so a server that
// drifts from the route table cannot boot.
func assemble(reg *obs.Registry, families []string, mount func(*apiMux)) http.Handler {
	if reg != nil {
		families = append(append([]string(nil), families...), FamMetrics)
	}
	m := newAPIMux(families...)
	mount(m)
	if reg != nil {
		m.handle("GET", "/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				httpError(w, http.StatusInternalServerError, err)
			}
		})
		m.handle("GET", "/varz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := reg.WriteJSON(w); err != nil {
				httpError(w, http.StatusInternalServerError, err)
			}
		})
	}
	mux := m.finish()
	if reg == nil {
		return mux
	}
	reqSeconds := reg.Histogram(obs.MHTTPRequestSeconds, obs.LatencyBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, pattern := mux.Handler(r)
		if pattern == "" {
			pattern = "unmatched"
		}
		start := time.Now()
		mux.ServeHTTP(w, r)
		reqSeconds.Observe(time.Since(start).Seconds())
		reg.Counter(fmt.Sprintf("%s{route=%q}", obs.MHTTPRequests, pattern)).Inc()
	})
}
