package httpapi

import (
	"context"

	"selfheal/internal/data"
	"selfheal/internal/shard"
	"selfheal/internal/triage"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
)

// shardBackend adapts the single-process sharded service to the Backend
// surface the v1 handlers are written against.
type shardBackend struct {
	svc *shard.Service
}

func (b shardBackend) SubmitRunSpec(id string, spec *wfjson.SpecJSON) error {
	return b.svc.SubmitRunSpec(id, spec)
}

func (b shardBackend) RunInfo(id string) (shard.RunInfo, error) { return b.svc.RunInfo(id) }
func (b shardBackend) Runs() []shard.RunInfo                    { return b.svc.Runs() }

func (b shardBackend) Trace(run string) []wlog.InstanceID {
	entries := b.svc.Log().Trace(run, true)
	out := make([]wlog.InstanceID, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.ID())
	}
	return out
}

func (b shardBackend) ReportAlerts(alerts []triage.Alert) (int, int, error) {
	return b.svc.ReportAlerts(alerts)
}

func (b shardBackend) RetryAfterSeconds() int { return b.svc.RetryAfterSeconds() }
func (b shardBackend) StateString() string    { return b.svc.State().String() }
func (b shardBackend) QueueLengths() (int, int, int) {
	return b.svc.QueueLengths()
}
func (b shardBackend) MetricsDoc() shard.Metrics { return b.svc.Metrics() }

func (b shardBackend) StoreSnapshot() map[string]int64 {
	snap := b.svc.Store().Snapshot()
	out := make(map[string]int64, len(snap))
	for k, v := range snap {
		out[string(k)] = int64(v)
	}
	return out
}

func (b shardBackend) InjectForged(run, task string, reads []string, writes map[string]int64) (wlog.InstanceID, error) {
	rk := make([]data.Key, len(reads))
	for i, k := range reads {
		rk[i] = data.Key(k)
	}
	wk := make(map[data.Key]data.Value, len(writes))
	for k, v := range writes {
		wk[data.Key(k)] = data.Value(v)
	}
	return b.svc.InjectForged(run, wf.TaskID(task), rk, wk)
}

func (b shardBackend) Checkpoint(ctx context.Context) error    { return b.svc.Checkpoint(ctx) }
func (b shardBackend) WaitIdle(ctx context.Context) error      { return b.svc.WaitIdle(ctx) }
func (b shardBackend) DrainRecovery(ctx context.Context) error { return b.svc.DrainRecovery(ctx) }

func (b shardBackend) LogDoc() (int, []LogEntry) {
	entries := b.svc.Log().Entries()
	out := make([]LogEntry, 0, len(entries))
	for _, e := range entries {
		out = append(out, LogEntry{
			LSN:    e.LSN,
			ID:     string(e.ID()),
			Run:    e.Run,
			Task:   string(e.Task),
			Visit:  e.Visit,
			Forged: e.Forged,
		})
	}
	return b.svc.Log().Base(), out
}

func (b shardBackend) VerifyDoc() VerifyDoc {
	doc := VerifyDoc{State: b.svc.State().String(), CheckIndex: "ok"}
	if err := b.svc.Store().CheckIndex(); err != nil {
		doc.CheckIndex = err.Error()
	}
	doc.AuditViolations = b.svc.Metrics().AuditViolations
	if err := b.svc.LastAuditError(); err != nil {
		doc.AuditError = err.Error()
	}
	if err := b.svc.LastRecoveryError(); err != nil {
		doc.RecoveryError = err.Error()
	}
	return doc
}
