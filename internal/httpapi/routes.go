package httpapi

import (
	"fmt"
	"net/http"
	"sort"
)

// The route table is the single source of truth for the HTTP surface: every
// mux registration flows through apiMux.handle, which refuses patterns the
// table does not declare, and apiMux.finish refuses a server that failed to
// mount a declared route of the families it serves. The OpenAPI document
// (GET /api/v1/openapi.json) is generated from the same rows, so the
// documented surface and the registered surface cannot drift — the property
// scripts/openapidrift re-asserts from CI through the wire.

// Route families: which servers mount a row.
const (
	// FamV1 is the stable versioned workflow API (every server).
	FamV1 = "v1"
	// FamChaos is the white-box fuzzing surface (ServerWithChaos and
	// cluster nodes only; never production).
	FamChaos = "chaos"
	// FamCluster is the cluster topology surface (cluster nodes only).
	FamCluster = "cluster"
	// FamLegacy is the unversioned analysis surface (/solve, /figures, ...).
	FamLegacy = "legacy"
	// FamMetrics is the exposition surface (/metrics, /varz), mounted only
	// when a registry is attached.
	FamMetrics = "metrics"
)

// Param documents one query parameter of a route.
type Param struct {
	Name, Desc string
}

// Route is one row of the API route table: the mux registration key plus
// the metadata the OpenAPI generator needs.
type Route struct {
	Method  string
	Pattern string
	Family  string
	Summary string
	Desc    string
	Params  []Param
	// Body is true when the route takes a JSON request body.
	Body bool
	// Responses maps status codes to descriptions ("200" at minimum).
	Responses map[string]string
}

// Key is the net/http ServeMux registration pattern ("METHOD /path").
func (r Route) Key() string { return r.Method + " " + r.Pattern }

// Table returns every route the system can serve, in a stable order.
// Servers mount the subset matching their families (apiMux).
func Table() []Route {
	return []Route{
		{Method: "POST", Pattern: "/api/v1/runs", Family: FamV1,
			Summary: "submit a workflow run",
			Desc:    "Registers a wfjson workflow run; init values seed the store first-writer-wins. On a cluster node the submission is proxied to the run's admission authority.",
			Body:    true,
			Responses: map[string]string{
				"201": "run accepted; body is the run status document",
				"400": "malformed body or invalid workflow spec",
				"409": "a run with this ID already exists",
				"429": "deferred-run queue full"}},
		{Method: "GET", Pattern: "/api/v1/runs", Family: FamV1,
			Summary: "list runs",
			Desc:    "Without query parameters: the legacy bare array of run status documents, sorted by ID. With any of status/limit/after: a paginated document {runs, next} filtered by status, capped at limit, resuming after the cursor.",
			Params: []Param{
				{"status", "filter: active, deferred, done or failed"},
				{"limit", "page size (positive integer)"},
				{"after", "resume cursor: the next page starts after this run ID"}},
			Responses: map[string]string{
				"200": "run status documents (bare array, or {runs, next} when paginated)",
				"400": "invalid status or limit"}},
		{Method: "GET", Pattern: "/api/v1/runs/{id}", Family: FamV1,
			Summary: "one run's status",
			Desc:    "The run status document; with trace=1 it adds the run's committed instance IDs (run/task#visit), forged included.",
			Params:  []Param{{"trace", "1 adds the committed instance-ID trace"}},
			Responses: map[string]string{
				"200": "run status document",
				"404": "unknown run ID"}},
		{Method: "POST", Pattern: "/api/v1/alerts", Family: FamV1,
			Summary: "deliver IDS alerts",
			Desc:    "Admits a single alert (bad) and/or a batch; the whole request is validated before anything is queued. Malformed instance IDs are a 400; well-formed IDs absent from the log are a 404.",
			Body:    true,
			Responses: map[string]string{
				"202": "queued; admitted/dropped counts and the service state",
				"400": "malformed body or malformed instance ID",
				"404": "well-formed instance ID absent from the log",
				"429": "alert buffer dropped the whole batch (Retry-After set)"}},
		{Method: "GET", Pattern: "/api/v1/state", Family: FamV1,
			Summary:   "service state",
			Desc:      "The §IV.C NORMAL/SCAN/RECOVERY classification, bounded-queue depths, cumulative metrics and run statuses.",
			Responses: map[string]string{"200": "state document"}},
		{Method: "GET", Pattern: "/api/v1/store", Family: FamV1,
			Summary:   "committed store snapshot",
			Desc:      "The current committed value of every key; keys are emitted sorted so two documents compare byte-for-byte.",
			Responses: map[string]string{"200": "key to value map"}},
		{Method: "GET", Pattern: "/api/v1/openapi.json", Family: FamV1,
			Summary:   "this API description",
			Desc:      "An OpenAPI 3.1 document generated from the server's route table: exactly the routes this server mounts.",
			Responses: map[string]string{"200": "OpenAPI 3.1 document"}},

		{Method: "GET", Pattern: "/api/v1/cluster", Family: FamCluster,
			Summary:   "cluster topology and health",
			Desc:      "Membership, key-range ownership, the stamper identity (the group-commit sequencer of the replicated record stream) and a live health probe of every node.",
			Responses: map[string]string{"200": "cluster document"}},

		{Method: "POST", Pattern: "/api/v1/chaos/forge", Family: FamChaos,
			Summary: "commit a forged task instance", Body: true,
			Desc: "Injects an attacker task that belongs to no workflow specification (fuzzing only).",
			Responses: map[string]string{
				"201": "forged instance committed", "400": "missing task or writes"}},
		{Method: "POST", Pattern: "/api/v1/chaos/checkpoint", Family: FamChaos,
			Summary: "force a durable snapshot",
			Responses: map[string]string{
				"200": "snapshot written", "409": "service is not durable or busy"}},
		{Method: "POST", Pattern: "/api/v1/chaos/drain", Family: FamChaos,
			Summary: "block until drained",
			Params: []Param{
				{"wait", "idle (default: runs retired and recovery drained) or recovery"},
				{"timeout", "Go duration (default 10s)"}},
			Responses: map[string]string{
				"200": "drained", "400": "bad wait mode or timeout", "409": "deadline expired"}},
		{Method: "GET", Pattern: "/api/v1/chaos/log", Family: FamChaos,
			Summary:   "committed log entries",
			Responses: map[string]string{"200": "log document (base, entries)"}},
		{Method: "GET", Pattern: "/api/v1/chaos/verify", Family: FamChaos,
			Summary:   "soundness verdicts",
			Desc:      "check-index, Theorem-3 audit and recovery-error verdicts for the fuzzing oracles.",
			Responses: map[string]string{"200": "verify document"}},

		{Method: "GET", Pattern: "/healthz", Family: FamLegacy,
			Summary: "liveness", Responses: map[string]string{"200": "ok"}},
		{Method: "GET", Pattern: "/figures", Family: FamLegacy,
			Summary: "reproducible figure IDs", Responses: map[string]string{"200": "ids"}},
		{Method: "GET", Pattern: "/figure/{id}", Family: FamLegacy,
			Summary: "one reproduced figure", Responses: map[string]string{"200": "figure"}},
		{Method: "GET", Pattern: "/solve", Family: FamLegacy,
			Summary: "CTMC metrics for a configuration", Responses: map[string]string{"200": "metrics"}},
		{Method: "GET", Pattern: "/stg.dot", Family: FamLegacy,
			Summary: "state-transition graph as DOT", Responses: map[string]string{"200": "dot"}},
		{Method: "POST", Pattern: "/repair", Family: FamLegacy,
			Summary: "stateless remote recovery", Body: true,
			Responses: map[string]string{"200": "repair result"}},

		{Method: "GET", Pattern: "/metrics", Family: FamMetrics,
			Summary: "Prometheus text exposition", Responses: map[string]string{"200": "text"}},
		{Method: "GET", Pattern: "/varz", Family: FamMetrics,
			Summary: "key-sorted JSON metric snapshot", Responses: map[string]string{"200": "json"}},
	}
}

// routeIndex maps registration keys to table rows.
func routeIndex() map[string]Route {
	idx := make(map[string]Route)
	for _, r := range Table() {
		idx[r.Key()] = r
	}
	return idx
}

// apiMux is a ServeMux that only accepts registrations declared in the route
// table, and can verify afterwards that every declared route of its families
// was mounted. Both drift directions are closed: an undeclared registration
// panics at boot (caught by every test that builds a server), and a declared
// but unmounted route fails finish.
type apiMux struct {
	mux      *http.ServeMux
	idx      map[string]Route
	families map[string]bool
	seen     map[string]bool
}

func newAPIMux(families ...string) *apiMux {
	m := &apiMux{
		mux:      http.NewServeMux(),
		idx:      routeIndex(),
		families: make(map[string]bool, len(families)),
		seen:     make(map[string]bool),
	}
	for _, f := range families {
		m.families[f] = true
	}
	return m
}

func (m *apiMux) handle(method, pattern string, h http.HandlerFunc) {
	key := method + " " + pattern
	row, ok := m.idx[key]
	if !ok {
		panic(fmt.Sprintf("httpapi: route %q is not in the route table (routes.go)", key))
	}
	if !m.families[row.Family] {
		panic(fmt.Sprintf("httpapi: route %q belongs to family %q, not served here", key, row.Family))
	}
	m.mux.HandleFunc(key, h)
	m.seen[key] = true
}

// finish asserts every declared route of the mux's families was mounted and
// returns the underlying ServeMux.
func (m *apiMux) finish() *http.ServeMux {
	var missing []string
	for key, row := range m.idx {
		if m.families[row.Family] && !m.seen[key] {
			missing = append(missing, key)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		panic(fmt.Sprintf("httpapi: declared routes never mounted: %v", missing))
	}
	return m.mux
}

// MountedRoutes returns the table rows a server with the given families
// serves, in table order — the OpenAPI generator's input.
func MountedRoutes(families ...string) []Route {
	want := make(map[string]bool, len(families))
	for _, f := range families {
		want[f] = true
	}
	var out []Route
	for _, r := range Table() {
		if want[r.Family] {
			out = append(out, r)
		}
	}
	return out
}
