package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"selfheal/internal/recovery"
	"selfheal/internal/wf"
	"selfheal/internal/wfjson"
	"selfheal/internal/wlog"
	"selfheal/internal/wlogio"
)

// repairRequest is the POST /repair document: a wlogio snapshot of the
// attacked history, declarative workflow specifications (wfjson), the
// run→spec assignment, and the IDS report.
type repairRequest struct {
	// Snapshot is the wlogio-encoded log and store.
	Snapshot json.RawMessage `json:"snapshot"`
	// Specs declares the workflows by name.
	Specs []wfjson.SpecJSON `json:"specs"`
	// Runs maps each run ID in the log to a spec name.
	Runs map[string]string `json:"runs"`
	// Bad lists the malicious instance IDs.
	Bad []string `json:"bad"`
}

// repairResponse summarizes the repair.
type repairResponse struct {
	Undone      []wlog.InstanceID `json:"undone"`
	Redone      []wlog.InstanceID `json:"redone"`
	NewExecuted []wlog.InstanceID `json:"newExecuted"`
	Dropped     []wlog.InstanceID `json:"droppedNotRedone"`
	Iterations  int               `json:"iterations"`
	Verified    bool              `json:"verified"`
	FinalState  map[string]int64  `json:"finalState"`
}

func handleRepair(w http.ResponseWriter, r *http.Request) {
	var req repairRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("body: %w", err))
		return
	}
	if len(req.Snapshot) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing snapshot"))
		return
	}
	log, store, err := wlogio.Decode(bytes.NewReader(req.Snapshot))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	byName := make(map[string]*wf.Spec, len(req.Specs))
	for i := range req.Specs {
		spec, _, err := wfjson.Build(&req.Specs[i])
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		byName[spec.Name] = spec
	}
	specs := make(map[string]*wf.Spec, len(req.Runs))
	for run, name := range req.Runs {
		spec, ok := byName[name]
		if !ok {
			httpError(w, http.StatusBadRequest, fmt.Errorf("run %q references unknown spec %q", run, name))
			return
		}
		specs[run] = spec
	}
	bad := make([]wlog.InstanceID, len(req.Bad))
	for i, b := range req.Bad {
		bad[i] = wlog.InstanceID(b)
	}

	res, err := recovery.Repair(store, log, specs, bad, recovery.Options{})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := repairResponse{
		Undone:      res.Undone,
		Redone:      res.Redone,
		NewExecuted: res.NewExecuted,
		Dropped:     res.DroppedNotRedone,
		Iterations:  res.Iterations,
		Verified:    len(recovery.VerifyResult(res, log, specs)) == 0,
		FinalState:  make(map[string]int64),
	}
	for k, v := range res.Store.Snapshot() {
		resp.FinalState[string(k)] = int64(v)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}
