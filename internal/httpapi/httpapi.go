// Package httpapi exposes the CTMC analysis engine as an HTTP service:
// figure regeneration (tables and CSV), custom-configuration solving with
// JSON metrics, and the Fig 3 state-transition-graph in Graphviz DOT. The
// cmd/selfheal-server binary serves it; tests drive it with net/http/httptest.
//
// ObservedHandler additionally exposes the runtime observability layer
// (internal/obs): a hand-rolled Prometheus text endpoint at /metrics, an
// expvar-style key-sorted JSON snapshot at /varz, and per-route request
// accounting. The metric catalog is docs/OBSERVABILITY.md.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"selfheal/internal/dot"
	"selfheal/internal/figures"
	"selfheal/internal/obs"
	"selfheal/internal/shard"
	"selfheal/internal/stg"
)

// Handler returns the analysis routes without instrumentation.
// ObservedHandler adds the /metrics and /varz exposition endpoints plus
// per-route request accounting; Server additionally mounts the versioned
// workflow API over a live sharded service.
func Handler() http.Handler {
	return ObservedHandler(nil)
}

// Server returns the full route set: the legacy analysis routes (/solve,
// /figures, /stg.dot, /repair), the exposition endpoints when reg is
// non-nil, and — when svc is non-nil — the versioned workflow API under
// /api/v1/ backed by the sharded self-healing service (docs/API.md).
func Server(reg *obs.Registry, svc *shard.Service) http.Handler {
	if svc == nil {
		return ObservedHandler(reg)
	}
	fams := []string{FamLegacy, FamV1}
	b := shardBackend{svc: svc}
	return assemble(reg, fams, func(m *apiMux) {
		legacyRoutes(m)
		v1Routes(m, b, fams)
	})
}

// legacyRoutes mounts the unversioned analysis surface. These routes predate
// the workflow service: CTMC figure regeneration, custom solving, the Fig 3
// state graph and the stateless remote-repair endpoint.
func legacyRoutes(mux *apiMux) {
	mux.handle("GET", "/healthz", handleHealth)
	mux.handle("GET", "/figures", handleFigures)
	mux.handle("GET", "/figure/{id}", handleFigure)
	mux.handle("GET", "/solve", handleSolve)
	mux.handle("GET", "/stg.dot", handleSTG)
	mux.handle("POST", "/repair", handleRepair)
}

func handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func handleFigures(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(figures.IDs()); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

func handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fig, err := figures.ByID(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, fig.Table())
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		fmt.Fprint(w, fig.CSV())
	case "json":
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(fig); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want table, csv or json)", format))
	}
}

// solveResponse is the JSON document of /solve.
type solveResponse struct {
	Lambda         float64      `json:"lambda"`
	Mu1            float64      `json:"mu1"`
	Xi1            float64      `json:"xi1"`
	AlertBuf       int          `json:"alertBuf"`
	RecoveryBuf    int          `json:"recoveryBuf"`
	F              string       `json:"f"`
	G              string       `json:"g"`
	States         int          `json:"states"`
	Steady         stg.Metrics  `json:"steady"`
	Epsilon        float64      `json:"epsilonConvergence"`
	MeanTimeToLoss *float64     `json:"meanTimeToLoss,omitempty"`
	Transient      *stg.Metrics `json:"transient,omitempty"`
	TransientAt    *float64     `json:"transientAt,omitempty"`
}

func handleSolve(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	getF := func(name string, def float64) (float64, error) {
		s := q.Get(name)
		if s == "" {
			return def, nil
		}
		return strconv.ParseFloat(s, 64)
	}
	lambda, err := getF("lambda", 1)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("lambda: %w", err))
		return
	}
	mu, err := getF("mu", 15)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("mu: %w", err))
		return
	}
	xi, err := getF("xi", 20)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("xi: %w", err))
		return
	}
	buf := 15
	if s := q.Get("buf"); s != "" {
		if buf, err = strconv.Atoi(s); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("buf: %w", err))
			return
		}
	}
	fName, gName := q.Get("f"), q.Get("g")
	if fName == "" {
		fName = "linear"
	}
	if gName == "" {
		gName = "linear"
	}
	m, err := buildModel(lambda, mu, xi, buf, fName, gName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	met, err := m.SteadyMetrics()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := solveResponse{
		Lambda: lambda, Mu1: mu, Xi1: xi,
		AlertBuf: buf, RecoveryBuf: buf,
		F: fName, G: gName,
		States: m.N(), Steady: met, Epsilon: met.Loss,
	}
	if lambda > 0 {
		if mttl, err := m.MeanTimeToLoss(); err == nil {
			resp.MeanTimeToLoss = &mttl
		}
	}
	if s := q.Get("t"); s != "" {
		tp, err := strconv.ParseFloat(s, 64)
		if err != nil || tp < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("t: invalid %q", s))
			return
		}
		pi, err := m.Transient(tp)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		tm := m.MetricsOf(pi)
		resp.Transient = &tm
		resp.TransientAt = &tp
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

func handleSTG(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	buf := 4
	var err error
	if s := q.Get("buf"); s != "" {
		if buf, err = strconv.Atoi(s); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("buf: %w", err))
			return
		}
	}
	m, err := buildModel(1, 15, 20, buf, "linear", "linear")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	fmt.Fprint(w, dot.STG(m))
}

func buildModel(lambda, mu, xi float64, buf int, fName, gName string) (*stg.Model, error) {
	f, err := stg.DegradationByName(fName)
	if err != nil {
		return nil, err
	}
	g, err := stg.DegradationByName(gName)
	if err != nil {
		return nil, err
	}
	p := stg.Square(lambda, mu, xi, buf)
	p.F, p.G = f, g
	return stg.New(p)
}

// errorEnvelope is the single error document every route returns:
// {"error": {"code": "...", "message": "..."}}.
type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// errorCode is the stable machine-readable slug for each status the API
// produces.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "run_exists"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusTooManyRequests:
		return "queue_full"
	default:
		return "internal"
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	var env errorEnvelope
	env.Error.Code = errorCode(status)
	env.Error.Message = err.Error()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(env)
}
