package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	code, body, _ := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Errorf("healthz: %d %q", code, body)
	}
}

func TestFiguresList(t *testing.T) {
	srv := newServer(t)
	code, body, hdr := get(t, srv, "/figures")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var ids []string
	if err := json.Unmarshal([]byte(body), &ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 15 {
		t.Errorf("got %d figure IDs", len(ids))
	}
}

func TestFigureFormats(t *testing.T) {
	srv := newServer(t)
	code, body, _ := get(t, srv, "/figure/4b")
	if code != http.StatusOK || !strings.Contains(body, "Figure 4b") {
		t.Errorf("table: %d", code)
	}
	code, body, hdr := get(t, srv, "/figure/4b?format=csv")
	if code != http.StatusOK || !strings.HasPrefix(body, "buffer size,") {
		t.Errorf("csv: %d %q", code, body[:40])
	}
	if ct := hdr.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("csv content type %q", ct)
	}
	code, body, _ = get(t, srv, "/figure/4b?format=json")
	if code != http.StatusOK {
		t.Fatalf("json: %d", code)
	}
	var fig struct {
		ID     string `json:"ID"`
		Series []struct {
			Name string
			Y    []float64
		}
	}
	if err := json.Unmarshal([]byte(body), &fig); err != nil {
		t.Fatal(err)
	}
	if fig.ID != "4b" || len(fig.Series) == 0 {
		t.Errorf("json figure = %+v", fig)
	}
}

func TestFigureErrors(t *testing.T) {
	srv := newServer(t)
	if code, _, _ := get(t, srv, "/figure/9z"); code != http.StatusNotFound {
		t.Errorf("unknown figure: %d", code)
	}
	if code, _, _ := get(t, srv, "/figure/4b?format=xml"); code != http.StatusBadRequest {
		t.Errorf("bad format: %d", code)
	}
}

func TestSolve(t *testing.T) {
	srv := newServer(t)
	code, body, _ := get(t, srv, "/solve?lambda=1&mu=15&xi=20&buf=15")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		States int `json:"states"`
		Steady struct {
			PNormal float64
			Loss    float64
		} `json:"steady"`
		MeanTimeToLoss *float64 `json:"meanTimeToLoss"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.States != 256 {
		t.Errorf("states = %d, want 256", resp.States)
	}
	if resp.Steady.PNormal < 0.8 {
		t.Errorf("P(NORMAL) = %g", resp.Steady.PNormal)
	}
	if resp.MeanTimeToLoss == nil || *resp.MeanTimeToLoss < 1000 {
		t.Errorf("mean time to loss = %v", resp.MeanTimeToLoss)
	}
}

func TestSolveWithTransient(t *testing.T) {
	srv := newServer(t)
	code, body, _ := get(t, srv, "/solve?lambda=1&mu=2&xi=3&buf=15&t=100")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var resp struct {
		Transient *struct {
			Loss float64
		} `json:"transient"`
		TransientAt *float64 `json:"transientAt"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Transient == nil || resp.TransientAt == nil {
		t.Fatal("transient missing")
	}
	if resp.Transient.Loss < 0.85 {
		t.Errorf("transient loss = %g, want Case 6's ~0.9", resp.Transient.Loss)
	}
}

func TestSolveErrors(t *testing.T) {
	srv := newServer(t)
	for _, path := range []string{
		"/solve?lambda=abc",
		"/solve?mu=abc",
		"/solve?buf=abc",
		"/solve?f=cubic",
		"/solve?mu=0",
		"/solve?t=-1",
	} {
		if code, _, _ := get(t, srv, path); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
		}
	}
}

func TestSTGDot(t *testing.T) {
	srv := newServer(t)
	code, body, hdr := get(t, srv, "/stg.dot?buf=2")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/vnd.graphviz" {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(body, "digraph stg") || !strings.Contains(body, `"N"`) {
		t.Errorf("dot body missing structure")
	}
	if code, _, _ := get(t, srv, "/stg.dot?buf=abc"); code != http.StatusBadRequest {
		t.Errorf("bad buf: %d", code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := newServer(t)
	resp, err := srv.Client().Post(srv.URL+"/solve", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /solve: %d, want 405", resp.StatusCode)
	}
}
