// Package figures regenerates every figure of the paper's evaluation (§V):
// the loss-probability-vs-buffer-size curves of Figure 4, the steady-state
// sweeps of Figure 5, and the transient analyses of Figure 6. Each figure is
// a set of named series over a common x axis, renderable as an aligned text
// table or CSV. The same code paths back cmd/ctmc-solve, the benchmark
// harness and EXPERIMENTS.md.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"selfheal/internal/stg"
)

// Series is one named curve.
type Series struct {
	Name string
	Y    []float64
}

// Figure is a reproduced figure: an x axis and one or more series over it.
type Figure struct {
	// ID is the paper's figure identifier, e.g. "4a", "5c", "6d".
	ID string
	// Title describes the experiment.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// X holds the x-axis values shared by all series.
	X []float64
	// Series holds the curves.
	Series []Series
}

// fig4Buffers is the buffer-size sweep of §V.A.1 (2..30).
func fig4Buffers() []int {
	out := make([]int, 0, 29)
	for b := 2; b <= 30; b++ {
		out = append(out, b)
	}
	return out
}

// Fig4 regenerates one panel of Figure 4: steady-state loss probability vs
// buffer size at λ=1, μ₁=15, ξ₁=20, for the panel's degradation families
// (DESIGN.md maps panels to families):
//
//	4a — slow degradation (none and sqrt): loss falls monotonically.
//	4b — linear degradation: loss has a minimum, then rises.
//	4c — quadratic degradation: the rise comes much earlier.
//	4d — μ quadratic, ξ linear: better than 4c in the operating range.
func Fig4(panel string) (*Figure, error) {
	type combo struct {
		name string
		f, g stg.Degradation
	}
	var combos []combo
	switch panel {
	case "a":
		combos = []combo{
			{"f=g=none", stg.DegradeNone, stg.DegradeNone},
			{"f=g=sqrt", stg.DegradeSqrt, stg.DegradeSqrt},
		}
	case "b":
		combos = []combo{{"f=g=linear", stg.DegradeLinear, stg.DegradeLinear}}
	case "c":
		combos = []combo{{"f=g=quad", stg.DegradeQuad, stg.DegradeQuad}}
	case "d":
		combos = []combo{
			{"f=quad g=linear", stg.DegradeQuad, stg.DegradeLinear},
			{"f=g=quad (4c)", stg.DegradeQuad, stg.DegradeQuad},
		}
	default:
		return nil, fmt.Errorf("figures: unknown Fig 4 panel %q (want a-d)", panel)
	}
	fig := &Figure{
		ID:     "4" + panel,
		Title:  fmt.Sprintf("Loss probability vs buffer size (λ=1, μ₁=15, ξ₁=20), panel %s", panel),
		XLabel: "buffer size",
		YLabel: "loss probability",
	}
	for _, b := range fig4Buffers() {
		fig.X = append(fig.X, float64(b))
	}
	for _, c := range combos {
		s := Series{Name: c.name}
		for _, b := range fig4Buffers() {
			p := stg.Square(1, 15, 20, b)
			p.F, p.G = c.f, c.g
			m, err := stg.New(p)
			if err != nil {
				return nil, err
			}
			met, err := m.SteadyMetrics()
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, met.Loss)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// fig5Metrics converts a sweep of models into the two Figure-5 panel kinds:
// probability panels (a, c, e) and expected-value panels (b, d, f).
func fig5Metrics(fig *Figure, expected bool, params []stg.Params) error {
	var pN, pS, pR, loss, eA, eR []float64
	for _, p := range params {
		m, err := stg.New(p)
		if err != nil {
			return err
		}
		met, err := m.SteadyMetrics()
		if err != nil {
			return err
		}
		pN = append(pN, met.PNormal)
		pS = append(pS, met.PScan)
		pR = append(pR, met.PRecovery)
		loss = append(loss, met.Loss)
		eA = append(eA, met.EAlerts)
		eR = append(eR, met.ERecovery)
	}
	if expected {
		fig.YLabel = "expected queue length (loss probability for reference)"
		fig.Series = []Series{
			{Name: "E[alerts]", Y: eA},
			{Name: "E[recovery units]", Y: eR},
			{Name: "loss probability", Y: loss},
		}
	} else {
		fig.YLabel = "steady-state probability"
		fig.Series = []Series{
			{Name: "P(NORMAL)", Y: pN},
			{Name: "P(SCAN)", Y: pS},
			{Name: "P(RECOVERY)", Y: pR},
			{Name: "loss probability", Y: loss},
		}
	}
	return nil
}

// Fig5 regenerates one panel of Figure 5 (steady-state sweeps with buffer 15
// and μ_k=μ₁/k, ξ_k=ξ₁/k, §V.A.2):
//
//	5a/5b — λ from 0 to 4 at μ₁=15, ξ₁=20 (Case 2).
//	5c/5d — μ₁ from ~0 to 20 at λ=1, ξ₁=20 (Case 3).
//	5e/5f — ξ₁ from ~0 to 20 at λ=1, μ₁=15 (Case 4).
func Fig5(panel string) (*Figure, error) {
	const buf = 15
	fig := &Figure{ID: "5" + panel}
	var params []stg.Params
	switch panel {
	case "a", "b":
		fig.Title = "Steady state vs λ (μ₁=15, ξ₁=20, buffer 15)"
		fig.XLabel = "λ"
		for x := 0.0; x <= 4.0+1e-9; x += 0.25 {
			fig.X = append(fig.X, x)
			params = append(params, stg.Square(x, 15, 20, buf))
		}
	case "c", "d":
		fig.Title = "Steady state vs μ₁ (λ=1, ξ₁=20, buffer 15)"
		fig.XLabel = "μ₁"
		for x := 0.5; x <= 20+1e-9; x += 0.5 {
			fig.X = append(fig.X, x)
			params = append(params, stg.Square(1, x, 20, buf))
		}
	case "e", "f":
		fig.Title = "Steady state vs ξ₁ (λ=1, μ₁=15, buffer 15)"
		fig.XLabel = "ξ₁"
		for x := 0.5; x <= 20+1e-9; x += 0.5 {
			fig.X = append(fig.X, x)
			params = append(params, stg.Square(1, 15, x, buf))
		}
	default:
		return nil, fmt.Errorf("figures: unknown Fig 5 panel %q (want a-f)", panel)
	}
	expected := panel == "b" || panel == "d" || panel == "f"
	if err := fig5Metrics(fig, expected, params); err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig6 regenerates one panel of Figure 6 (transient behavior from the
// NORMAL state, buffer 15, linear degradation):
//
//	6a/6b — Case 5, the good system (λ=1, μ₁=15, ξ₁=20) over 4 time units:
//	        state probabilities and cumulative time per class.
//	6c/6d — Case 6, the poor system (λ=1, μ₁=2, ξ₁=3) over 100 time units.
func Fig6(panel string) (*Figure, error) {
	var (
		p       stg.Params
		horizon float64
		steps   int
		caseNo  string
	)
	switch panel {
	case "a", "b":
		p, horizon, steps, caseNo = stg.Square(1, 15, 20, 15), 4, 40, "Case 5 (good system)"
	case "c", "d":
		p, horizon, steps, caseNo = stg.Square(1, 2, 3, 15), 100, 50, "Case 6 (poor system)"
	default:
		return nil, fmt.Errorf("figures: unknown Fig 6 panel %q (want a-d)", panel)
	}
	m, err := stg.New(p)
	if err != nil {
		return nil, err
	}
	cumulative := panel == "b" || panel == "d"
	fig := &Figure{ID: "6" + panel, XLabel: "t"}
	var pN, pS, pR, loss []float64
	for i := 0; i <= steps; i++ {
		t := horizon * float64(i) / float64(steps)
		fig.X = append(fig.X, t)
		var met stg.Metrics
		if cumulative {
			l, err := m.CumulativeTime(t)
			if err != nil {
				return nil, err
			}
			met = cumulativeMetrics(m, l)
		} else {
			pi, err := m.Transient(t)
			if err != nil {
				return nil, err
			}
			met = m.MetricsOf(pi)
		}
		pN = append(pN, met.PNormal)
		pS = append(pS, met.PScan)
		pR = append(pR, met.PRecovery)
		loss = append(loss, met.Loss)
	}
	if cumulative {
		fig.Title = fmt.Sprintf("Cumulative time per state class, %s", caseNo)
		fig.YLabel = "cumulative time units"
		fig.Series = []Series{
			{Name: "time in NORMAL", Y: pN},
			{Name: "time in SCAN", Y: pS},
			{Name: "time in RECOVERY", Y: pR},
			{Name: "time at right edge", Y: loss},
		}
	} else {
		fig.Title = fmt.Sprintf("Transient state probability, %s", caseNo)
		fig.YLabel = "probability"
		fig.Series = []Series{
			{Name: "P(NORMAL)", Y: pN},
			{Name: "P(SCAN)", Y: pS},
			{Name: "P(RECOVERY)", Y: pR},
			{Name: "loss probability", Y: loss},
		}
	}
	return fig, nil
}

// cumulativeMetrics aggregates a cumulative-time vector by state class,
// reusing the Metrics field names (values are time units, not probabilities).
func cumulativeMetrics(m *stg.Model, l []float64) stg.Metrics {
	var out stg.Metrics
	for i, s := range m.States() {
		switch s.Classify() {
		case stg.Normal:
			out.PNormal += l[i]
		case stg.Scan:
			out.PScan += l[i]
		case stg.Recovery:
			out.PRecovery += l[i]
		}
		if s.Alerts == m.Params().AlertBuf {
			out.Loss += l[i]
		}
	}
	return out
}

// FigE1 is an extension experiment evaluating §VI's buffer-sizing advice
// ("the buffer size of IDS alerts may be less than the buffer size of
// recovery tasks according to its expected value… to reduce the buffer size
// of IDS alerts is worthless"): steady-state loss probability over the
// (alert buffer, recovery buffer) grid at λ=1, μ₁=15, ξ₁=20 with linear
// degradation. One series per recovery-buffer size; x is the alert buffer.
func FigE1() (*Figure, error) {
	recBufs := []int{4, 8, 12, 15}
	alertBufs := []int{1, 2, 3, 4, 6, 8, 10, 12, 15}
	fig := &Figure{
		ID:     "e1",
		Title:  "Loss probability vs alert-buffer size per recovery-buffer size (λ=1, μ₁=15, ξ₁=20)",
		XLabel: "alert buffer size",
		YLabel: "loss probability",
	}
	for _, a := range alertBufs {
		fig.X = append(fig.X, float64(a))
	}
	for _, r := range recBufs {
		s := Series{Name: fmt.Sprintf("recovery buffer %d", r)}
		for _, a := range alertBufs {
			p := stg.Params{Lambda: 1, Mu1: 15, Xi1: 20, AlertBuf: a, RecoveryBuf: r}
			m, err := stg.New(p)
			if err != nil {
				return nil, err
			}
			met, err := m.SteadyMetrics()
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, met.Loss)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ByID regenerates any figure by its identifier ("4a".."4d", "5a".."5f",
// "6a".."6d", and the extension "e1").
func ByID(id string) (*Figure, error) {
	if id == "e1" {
		return FigE1()
	}
	if len(id) != 2 {
		return nil, fmt.Errorf("figures: bad figure id %q", id)
	}
	panel := string(id[1])
	switch id[0] {
	case '4':
		return Fig4(panel)
	case '5':
		return Fig5(panel)
	case '6':
		return Fig6(panel)
	default:
		return nil, fmt.Errorf("figures: unknown figure %q", id)
	}
}

// IDs lists every reproducible figure identifier.
func IDs() []string {
	out := []string{
		"4a", "4b", "4c", "4d",
		"5a", "5b", "5c", "5d", "5e", "5f",
		"6a", "6b", "6c", "6d",
		"e1",
	}
	sort.Strings(out)
	return out
}

// Table renders the figure as an aligned text table.
func (f *Figure) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %22s", s.Name)
	}
	sb.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&sb, "%-10.4g", x)
		for _, s := range f.Series {
			fmt.Fprintf(&sb, " %22.6g", s.Y[i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString(f.XLabel)
	for _, s := range f.Series {
		sb.WriteByte(',')
		sb.WriteString(s.Name)
	}
	sb.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&sb, "%g", x)
		for _, s := range f.Series {
			fmt.Fprintf(&sb, ",%g", s.Y[i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
