package figures

import (
	"strings"
	"testing"
)

func TestIDsAllResolve(t *testing.T) {
	ids := IDs()
	if len(ids) != 15 {
		t.Fatalf("got %d figure IDs, want 15", len(ids))
	}
	for _, id := range ids {
		// Only check resolution and shape here; heavyweight panels are
		// exercised individually below and by the benchmarks.
		if id[0] == '5' || id == "6c" || id == "6d" {
			continue
		}
		fig, err := ByID(id)
		if err != nil {
			t.Errorf("ByID(%s): %v", id, err)
			continue
		}
		checkShape(t, fig)
	}
}

func checkShape(t *testing.T, fig *Figure) {
	t.Helper()
	if len(fig.X) == 0 {
		t.Errorf("fig %s: empty x axis", fig.ID)
	}
	if len(fig.Series) == 0 {
		t.Errorf("fig %s: no series", fig.ID)
	}
	for _, s := range fig.Series {
		if len(s.Y) != len(fig.X) {
			t.Errorf("fig %s series %q: %d points, want %d", fig.ID, s.Name, len(s.Y), len(fig.X))
		}
	}
}

func TestByIDErrors(t *testing.T) {
	for _, id := range []string{"", "4", "9a", "4z", "5g", "6e", "falcon"} {
		if _, err := ByID(id); err == nil {
			t.Errorf("ByID(%q) accepted", id)
		}
	}
}

func TestFig4aMonotone(t *testing.T) {
	fig, err := Fig4("a")
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, fig)
	for _, s := range fig.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+1e-12 {
				t.Errorf("fig 4a %q: loss rises at buffer %g", s.Name, fig.X[i])
			}
		}
	}
}

func TestFig4dBeatsFig4c(t *testing.T) {
	fig, err := Fig4("d")
	if err != nil {
		t.Fatal(err)
	}
	var dSeries, cSeries []float64
	for _, s := range fig.Series {
		if strings.Contains(s.Name, "4c") {
			cSeries = s.Y
		} else {
			dSeries = s.Y
		}
	}
	if dSeries == nil || cSeries == nil {
		t.Fatal("fig 4d missing comparison series")
	}
	// In the low-loss operating range, the μ-faster assignment is at
	// least as good as the symmetric fast case.
	better := 0
	for i := range dSeries {
		if dSeries[i] <= cSeries[i]+1e-12 {
			better++
		}
	}
	if better < len(dSeries)*3/4 {
		t.Errorf("fig 4d better at only %d/%d buffers", better, len(dSeries))
	}
}

func TestFig5aThreshold(t *testing.T) {
	fig, err := Fig5("a")
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, fig)
	var pn, loss []float64
	for _, s := range fig.Series {
		switch s.Name {
		case "P(NORMAL)":
			pn = s.Y
		case "loss probability":
			loss = s.Y
		}
	}
	// §V.A.2: λ ≤ 1 keeps P(NORMAL) > 0.8; λ ≥ 1.5 collapses it and
	// drives loss up quickly.
	for i, x := range fig.X {
		switch {
		case x <= 1 && pn[i] <= 0.8:
			t.Errorf("λ=%g: P(NORMAL)=%g, want > 0.8", x, pn[i])
		case x >= 1.5 && pn[i] >= 0.5:
			t.Errorf("λ=%g: P(NORMAL)=%g, want collapse", x, pn[i])
		}
		if x <= 1 && loss[i] >= 0.01 {
			t.Errorf("λ=%g: loss=%g, want <1%%", x, loss[i])
		}
		if x >= 2 && loss[i] <= 0.3 {
			t.Errorf("λ=%g: loss=%g, want large", x, loss[i])
		}
	}
}

func TestFig5cCostEffectiveKnee(t *testing.T) {
	fig, err := Fig5("c")
	if err != nil {
		t.Fatal(err)
	}
	var pn []float64
	for _, s := range fig.Series {
		if s.Name == "P(NORMAL)" {
			pn = s.Y
		}
	}
	// Case 3: beyond μ₁ ≈ 15 further improvement is marginal.
	last := pn[len(pn)-1]
	var at15 float64
	for i, x := range fig.X {
		if x >= 15 {
			at15 = pn[i]
			break
		}
	}
	if last-at15 > 0.05 {
		t.Errorf("P(NORMAL) still improving past μ₁=15: %g → %g", at15, last)
	}
	// And μ₁ near zero is catastrophic.
	if pn[0] > 0.2 {
		t.Errorf("P(NORMAL)=%g at μ₁=%g, want collapse", pn[0], fig.X[0])
	}
}

func TestFig6aGoodSystem(t *testing.T) {
	fig, err := Fig6("a")
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, fig)
	for _, s := range fig.Series {
		if s.Name != "loss probability" {
			continue
		}
		for i, v := range s.Y {
			if v > 1e-6 {
				t.Errorf("fig 6a: visible loss %g at t=%g", v, fig.X[i])
			}
		}
	}
}

func TestFig6bCumulativeSums(t *testing.T) {
	fig, err := Fig6("b")
	if err != nil {
		t.Fatal(err)
	}
	// At each t, time in NORMAL+SCAN+RECOVERY = t.
	var n, s, r []float64
	for _, sr := range fig.Series {
		switch sr.Name {
		case "time in NORMAL":
			n = sr.Y
		case "time in SCAN":
			s = sr.Y
		case "time in RECOVERY":
			r = sr.Y
		}
	}
	for i, t0 := range fig.X {
		sum := n[i] + s[i] + r[i]
		if diff := sum - t0; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("t=%g: class times sum to %g", t0, sum)
		}
	}
}

func TestTableAndCSV(t *testing.T) {
	fig, err := Fig4("b")
	if err != nil {
		t.Fatal(err)
	}
	tbl := fig.Table()
	if !strings.Contains(tbl, "Figure 4b") || !strings.Contains(tbl, "buffer size") {
		t.Errorf("table missing headers:\n%s", tbl[:100])
	}
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(fig.X)+1 {
		t.Errorf("csv has %d lines, want %d", len(lines), len(fig.X)+1)
	}
	if !strings.HasPrefix(lines[0], "buffer size,") {
		t.Errorf("csv header = %q", lines[0])
	}
}

// TestFigE1BufferAdvice encodes the §VI buffer-sizing discussion measured by
// the extension experiment: a tiny alert buffer is the bottleneck no matter
// how large the recovery buffer is; once the alert buffer reaches a modest
// size (≈6 at these rates), further enlargement buys nothing.
func TestFigE1BufferAdvice(t *testing.T) {
	fig, err := FigE1()
	if err != nil {
		t.Fatal(err)
	}
	checkShape(t, fig)
	idx := func(x float64) int {
		for i, v := range fig.X {
			if v == x {
				return i
			}
		}
		t.Fatalf("x=%g not in figure", x)
		return -1
	}
	i2, i6 := idx(2), idx(6)
	for _, s := range fig.Series {
		// Tiny alert buffers dominate the loss...
		if s.Y[i2] < 50*s.Y[i6] {
			t.Errorf("%s: loss(2)=%g not ≫ loss(6)=%g", s.Name, s.Y[i2], s.Y[i6])
		}
		// ...and at the tiny end the recovery buffer is irrelevant: all
		// series coincide within 1%.
		if rel := s.Y[i2]/fig.Series[0].Y[i2] - 1; rel > 0.01 || rel < -0.01 {
			t.Errorf("%s: loss(2) spread %g, want coincident series", s.Name, rel)
		}
	}
	// Past the knee, enlarging the alert buffer never helps much: for
	// every series the minimum over [6..15] is within 10x of loss(6)
	// (i.e. no order-of-magnitude gains remain).
	for _, s := range fig.Series {
		min := s.Y[i6]
		for i := i6; i < len(s.Y); i++ {
			if s.Y[i] < min {
				min = s.Y[i]
			}
		}
		if s.Y[i6] > 10*min {
			t.Errorf("%s: loss(6)=%g still 10x above the best %g", s.Name, s.Y[i6], min)
		}
	}
}
