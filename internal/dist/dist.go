// Package dist implements de-centralized workflow processing (§VII of the
// paper; Figure 1 itself shows two workflows spread over three processors):
// a cluster of processing nodes, each executing the tasks assigned to it,
// with the control token of every workflow run handed from node to node as
// a message. Each node persists its own log segment stamped with a global
// commit counter ("the committing time is distinguishable", §II.A), and
// recovery merges the segments into the global system log before running
// the standard dependency-based analysis — exactly the deployment the
// paper's footnote and related-work discussion describe.
//
// Data objects live in a shared versioned store (the paper's model has
// cross-processor data dependences: t8 on one processor reads what t1 wrote
// on another). Commits are serialized by the cluster so commit stamps are
// unique and totally ordered.
//
// This package is the in-process model of that deployment; internal/cluster
// (docs/CLUSTER.md) realizes the same design as a real networked cluster of
// selfheal-server processes.
package dist

import (
	"errors"
	"fmt"
	"sync"

	"selfheal/internal/data"
	"selfheal/internal/recovery"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Assignment maps each task of a workflow to the node that executes it.
type Assignment map[wf.TaskID]string

// token is the control message passed between nodes: "run r is ready to
// execute task t".
type token struct {
	run  string
	task wf.TaskID
}

// Attack corrupts one distributed task instance, mirroring engine.Attack.
type Attack struct {
	Run     string
	Task    wf.TaskID
	Visit   int
	Compute wf.ComputeFunc
	Choose  wf.ChooseFunc
}

// Node is one processing node.
type Node struct {
	name    string
	inbox   chan token
	cluster *Cluster

	mu      sync.Mutex
	segment []wlog.StampedEntry
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Segment returns a copy of the node's log segment.
func (n *Node) Segment() []wlog.StampedEntry {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]wlog.StampedEntry, len(n.segment))
	copy(out, n.segment)
	return out
}

// Cluster is a set of nodes processing workflows over a shared store.
type Cluster struct {
	mu       sync.Mutex
	store    *data.Store
	stamp    float64
	nodes    map[string]*Node
	specs    map[string]*wf.Spec
	assign   map[string]Assignment
	attacks  map[wlog.InstanceID]*Attack
	visits   map[string]map[wf.TaskID]int
	inflight sync.WaitGroup
	done     map[string]chan error
	wg       sync.WaitGroup
	closed   bool
}

// NewCluster builds a cluster with the given node names over the store.
func NewCluster(store *data.Store, nodeNames ...string) (*Cluster, error) {
	if store == nil {
		store = data.NewStore()
	}
	if len(nodeNames) == 0 {
		return nil, errors.New("dist: need at least one node")
	}
	c := &Cluster{
		store:   store,
		nodes:   make(map[string]*Node, len(nodeNames)),
		specs:   make(map[string]*wf.Spec),
		assign:  make(map[string]Assignment),
		attacks: make(map[wlog.InstanceID]*Attack),
		visits:  make(map[string]map[wf.TaskID]int),
		done:    make(map[string]chan error),
	}
	for _, name := range nodeNames {
		if name == "" {
			return nil, errors.New("dist: empty node name")
		}
		if _, dup := c.nodes[name]; dup {
			return nil, fmt.Errorf("dist: duplicate node %q", name)
		}
		n := &Node{name: name, inbox: make(chan token, 64), cluster: c}
		c.nodes[name] = n
		c.wg.Add(1)
		go n.serve()
	}
	return c, nil
}

// AddAttack registers a task corruption.
func (c *Cluster) AddAttack(a Attack) {
	if a.Visit == 0 {
		a.Visit = 1
	}
	cp := a
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attacks[wlog.FormatInstance(a.Run, a.Task, a.Visit)] = &cp
}

// Submit starts a run of spec with the given task assignment. The returned
// channel receives the run's terminal error (nil on success) exactly once.
func (c *Cluster) Submit(run string, spec *wf.Spec, assign Assignment) (<-chan error, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	for id := range spec.Tasks {
		node, ok := assign[id]
		if !ok {
			return nil, fmt.Errorf("dist: task %s of run %s has no node assignment", id, run)
		}
		if _, ok := c.nodes[node]; !ok {
			return nil, fmt.Errorf("dist: task %s assigned to unknown node %q", id, node)
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("dist: cluster closed")
	}
	if _, dup := c.specs[run]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: duplicate run %q", run)
	}
	c.specs[run] = spec
	c.assign[run] = assign
	c.visits[run] = make(map[wf.TaskID]int)
	ch := make(chan error, 1)
	c.done[run] = ch
	start := c.nodes[assign[spec.Start]]
	c.inflight.Add(1)
	c.mu.Unlock()

	start.inbox <- token{run: run, task: spec.Start}
	return ch, nil
}

// serve is the node's message loop.
func (n *Node) serve() {
	defer n.cluster.wg.Done()
	for tok := range n.inbox {
		n.execute(tok)
	}
}

// execute commits one task instance and forwards the control token.
func (n *Node) execute(tok token) {
	c := n.cluster
	c.mu.Lock()
	spec := c.specs[tok.run]
	task := spec.Tasks[tok.task]
	visit := c.visits[tok.run][tok.task] + 1
	c.visits[tok.run][tok.task] = visit
	inst := wlog.FormatInstance(tok.run, tok.task, visit)
	attack := c.attacks[inst]

	// Commit under the cluster lock: reads, compute and writes are one
	// distinguishable committing instant (§II.A).
	entry := &wlog.Entry{
		Run:   tok.run,
		Task:  tok.task,
		Visit: visit,
		Reads: make(map[data.Key]wlog.ReadObs, len(task.Reads)),
	}
	reads := make(map[data.Key]data.Value, len(task.Reads))
	for _, k := range task.Reads {
		if v, ok := c.store.Get(k); ok {
			entry.Reads[k] = wlog.ReadObs{Value: v.Value, Writer: v.Writer, WriterPos: v.Pos}
			reads[k] = v.Value
		} else {
			entry.Reads[k] = wlog.ReadObs{WriterPos: wlog.MissingPos}
			reads[k] = 0
		}
	}
	compute := task.Compute
	if attack != nil && attack.Compute != nil {
		compute = attack.Compute
	}
	entry.Writes = make(map[data.Key]data.Value, len(task.Writes))
	if compute != nil {
		out := compute(reads)
		for _, k := range task.Writes {
			entry.Writes[k] = out[k]
		}
	} else {
		for _, k := range task.Writes {
			entry.Writes[k] = 0
		}
	}

	var next wf.TaskID
	var failure error
	switch {
	case len(task.Next) == 0:
		// End node.
	case len(task.Next) == 1:
		next = task.Next[0]
	default:
		choose := task.Choose
		if attack != nil && attack.Choose != nil {
			choose = attack.Choose
		}
		next = choose(reads)
		if !valid(task.Next, next) {
			failure = fmt.Errorf("dist: %s chose invalid successor %q", inst, next)
		}
		entry.Chosen = next
	}

	if failure == nil {
		c.stamp++
		stamp := c.stamp
		entry.LSN = int(stamp) // provisional; the merge reassigns dense LSNs
		for k, v := range entry.Writes {
			c.store.Write(k, v, stamp, string(inst), false)
		}
		n.mu.Lock()
		n.segment = append(n.segment, wlog.StampedEntry{Stamp: stamp, Entry: entry})
		n.mu.Unlock()
	}

	doneCh := c.done[tok.run]
	var forward *Node
	if failure == nil && next != "" {
		forward = c.nodes[c.assign[tok.run][next]]
	}
	c.mu.Unlock()

	switch {
	case failure != nil:
		doneCh <- failure
		c.inflight.Done()
	case forward != nil:
		forward.inbox <- token{run: tok.run, task: next}
	default:
		doneCh <- nil
		c.inflight.Done()
	}
}

func valid(ids []wf.TaskID, id wf.TaskID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Quiesce blocks until every submitted run has terminated.
func (c *Cluster) Quiesce() {
	c.inflight.Wait()
}

// Close shuts the node loops down. The cluster must be quiescent.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, n := range c.nodes {
		close(n.inbox)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// Store returns the shared store.
func (c *Cluster) Store() *data.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// MergedLog gathers every node's segment and merges them into the global
// system log (stamp order). The cluster should be quiescent.
func (c *Cluster) MergedLog() (*wlog.Log, error) {
	c.mu.Lock()
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	segs := make([][]wlog.StampedEntry, 0, len(nodes))
	for _, n := range nodes {
		segs = append(segs, n.Segment())
	}
	return wlog.MergeSegments(segs...)
}

// Recover performs distributed attack recovery: gather segments, merge,
// analyze and repair with the standard engine, then install the repaired
// store cluster-wide. The cluster must be quiescent. The merged log the
// repair ran against is returned with the result for inspection.
func (c *Cluster) Recover(bad []wlog.InstanceID, opts recovery.Options) (*recovery.Result, *wlog.Log, error) {
	c.Quiesce()
	merged, err := c.MergedLog()
	if err != nil {
		return nil, nil, err
	}
	// The merge renumbers LSNs densely in stamp order, but the store's
	// version positions are the raw stamps. Rebuild a store whose
	// positions match the merged LSNs so positional recovery semantics
	// hold, by re-applying the merged log onto the initial versions.
	c.mu.Lock()
	specs := make(map[string]*wf.Spec, len(c.specs))
	for run, spec := range c.specs {
		specs[run] = spec
	}
	rebased := rebase(c.store, merged)
	c.mu.Unlock()

	res, err := recovery.Repair(rebased, merged, specs, bad, opts)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.store = res.Store
	c.mu.Unlock()
	return res, merged, nil
}

// rebase rebuilds the store with version positions equal to the merged
// log's dense LSNs: initial versions are kept, and every logged write is
// re-applied at its entry's LSN.
func rebase(st *data.Store, merged *wlog.Log) *data.Store {
	out := data.NewStore()
	for _, k := range st.Keys() {
		for _, v := range st.Chain(k) {
			if v.Writer == "" && v.Pos == data.InitPos {
				out.Init(k, v.Value)
			}
		}
	}
	for _, e := range merged.Entries() {
		for k, v := range e.Writes {
			out.Write(k, v, float64(e.LSN), string(e.ID()), false)
		}
	}
	return out
}
