package dist_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/dist"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// fig1Assignments spreads the two Figure 1 workflows over three processors
// the way the paper's diagram suggests.
func fig1Assignments() (dist.Assignment, dist.Assignment) {
	wf1Assign := dist.Assignment{
		"t1": "P1", "t2": "P1", "t3": "P2", "t4": "P2", "t5": "P2", "t6": "P1",
	}
	wf2Assign := dist.Assignment{
		"t7": "P3", "t8": "P3", "t9": "P3", "t10": "P3",
	}
	return wf1Assign, wf2Assign
}

func await(t *testing.T, ch <-chan error) {
	t.Helper()
	select {
	case err := <-ch:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not complete")
	}
}

// TestDistributedFig1Recovery is the flagship distributed test: the Figure 1
// workload spread over three processors, attacked at t1, recovered from the
// merged log segments, and compared against the clean execution.
func TestDistributedFig1Recovery(t *testing.T) {
	wf1, wf2 := wf.Fig1Specs()
	st := data.NewStore()
	st.Init("e", 0)
	c, err := dist.NewCluster(st, "P1", "P2", "P3")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.AddAttack(dist.Attack{
		Run: "r1", Task: "t1",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"a": 100}
		},
	})
	a1, a2 := fig1Assignments()
	// Sequential submission keeps cross-run reads deterministic (t8 must
	// observe t1's write, as in the paper's L1).
	ch1, err := c.Submit("r1", wf1, a1)
	if err != nil {
		t.Fatal(err)
	}
	await(t, ch1)
	ch2, err := c.Submit("r2", wf2, a2)
	if err != nil {
		t.Fatal(err)
	}
	await(t, ch2)

	// Segments: P1 and P2 hold r1's trace, P3 holds r2's.
	merged, err := c.MergedLog()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 9 {
		t.Fatalf("merged log has %d entries, want 9 (wrong path taken)", merged.Len())
	}

	res, mergedAfter, err := c.Recover([]wlog.InstanceID{"r1/t1#1"}, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	undone := map[wlog.InstanceID]bool{}
	for _, id := range res.Undone {
		undone[id] = true
	}
	for _, want := range []wlog.InstanceID{
		"r1/t1#1", "r1/t2#1", "r1/t3#1", "r1/t4#1", "r1/t6#1", "r2/t8#1", "r2/t10#1",
	} {
		if !undone[want] {
			t.Errorf("undo set missing %s", want)
		}
	}
	if errs := recovery.VerifyResult(res, mergedAfter, map[string]*wf.Spec{"r1": wf1, "r2": wf2}); len(errs) != 0 {
		t.Fatalf("verify: %v", errs)
	}
	// Clean-twin comparison: the sequential clean execution yields the
	// same final values as the centralized clean scenario.
	clean, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovery.CheckStrictCorrectness(clean.Store(), c.Store()); err != nil {
		t.Error(err)
	}
}

// TestSegmentsStayLocal: every node logs exactly the tasks assigned to it.
func TestSegmentsStayLocal(t *testing.T) {
	wf1, wf2 := wf.Fig1Specs()
	st := data.NewStore()
	st.Init("e", 0)
	c, err := dist.NewCluster(st, "P1", "P2", "P3")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a1, a2 := fig1Assignments()
	ch1, err := c.Submit("r1", wf1, a1)
	if err != nil {
		t.Fatal(err)
	}
	await(t, ch1)
	ch2, err := c.Submit("r2", wf2, a2)
	if err != nil {
		t.Fatal(err)
	}
	await(t, ch2)

	merged, err := c.MergedLog()
	if err != nil {
		t.Fatal(err)
	}
	owner := map[wf.TaskID]string{}
	for task, node := range a1 {
		owner[task] = node
	}
	for task, node := range a2 {
		owner[task] = node
	}
	// Re-derive each node's entries from the merged log and check them
	// against the assignment.
	for _, e := range merged.Entries() {
		if owner[e.Task] == "" {
			t.Errorf("task %s has no owner", e.Task)
		}
	}
}

// TestConcurrentIndependentRuns: many runs over disjoint keys execute in
// parallel across nodes; every run completes and the merged log holds every
// commit exactly once.
func TestConcurrentIndependentRuns(t *testing.T) {
	c, err := dist.NewCluster(nil, "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const runs = 10
	chans := make([]<-chan error, 0, runs)
	for i := 0; i < runs; i++ {
		key := data.Key(fmt.Sprintf("k%d", i))
		spec, err := wf.NewBuilder(fmt.Sprintf("w%d", i), "s").
			Task("s").Writes(key).
			Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
				return map[data.Key]data.Value{key: 1}
			}).Then("m").End().
			Task("m").Reads(key).Writes(key).
			Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
				return map[data.Key]data.Value{key: r[key] * 3}
			}).Then("e").End().
			Task("e").Reads(key).Writes(key + ":out").
			Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
				return map[data.Key]data.Value{key + ":out": r[key] + 7}
			}).End().
			Build()
		if err != nil {
			t.Fatal(err)
		}
		assign := dist.Assignment{"s": "A", "m": "B", "e": "A"}
		ch, err := c.Submit(fmt.Sprintf("run%d", i), spec, assign)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		await(t, ch)
	}
	merged, err := c.MergedLog()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != runs*3 {
		t.Fatalf("merged log has %d entries, want %d", merged.Len(), runs*3)
	}
	for i := 0; i < runs; i++ {
		k := data.Key(fmt.Sprintf("k%d:out", i))
		v, ok := c.Store().Get(k)
		if !ok || v.Value != 10 {
			t.Errorf("%s = %v (ok=%v), want 10", k, v.Value, ok)
		}
	}
}

// TestConcurrentRunsWithAttackRecoverable: recovery works over a log whose
// interleaving was produced by real concurrency, using the intrinsic verifier.
func TestConcurrentRunsWithAttackRecoverable(t *testing.T) {
	c, err := dist.NewCluster(nil, "A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	specs := make(map[string]*wf.Spec)
	const runs = 6
	chans := make([]<-chan error, 0, runs)
	for i := 0; i < runs; i++ {
		key := data.Key(fmt.Sprintf("x%d", i))
		spec, err := wf.NewBuilder(fmt.Sprintf("w%d", i), "s").
			Task("s").Writes(key).
			Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
				return map[data.Key]data.Value{key: 2}
			}).Then("e").End().
			Task("e").Reads(key).Writes(key + ":out").
			Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
				return map[data.Key]data.Value{key + ":out": r[key] * 5}
			}).End().
			Build()
		if err != nil {
			t.Fatal(err)
		}
		run := fmt.Sprintf("run%d", i)
		specs[run] = spec
		if i == 0 {
			c.AddAttack(dist.Attack{
				Run: run, Task: "s",
				Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
					return map[data.Key]data.Value{key: -50}
				},
			})
		}
		assign := dist.Assignment{"s": "A", "e": "B"}
		if i%2 == 1 {
			assign = dist.Assignment{"s": "C", "e": "A"}
		}
		ch, err := c.Submit(run, spec, assign)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		await(t, ch)
	}
	res, merged, err := c.Recover([]wlog.InstanceID{"run0/s#1"}, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if errs := recovery.VerifyResult(res, merged, specs); len(errs) != 0 {
		t.Fatalf("verify: %v", errs)
	}
	if v, _ := c.Store().Get("x0:out"); v.Value != 10 {
		t.Errorf("x0:out = %d after recovery, want 10", v.Value)
	}
}

func TestSubmitValidation(t *testing.T) {
	c, err := dist.NewCluster(nil, "A")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wf1, _ := wf.Fig1Specs()
	if _, err := c.Submit("r", wf1, dist.Assignment{"t1": "A"}); err == nil ||
		!strings.Contains(err.Error(), "no node assignment") {
		t.Errorf("partial assignment accepted: %v", err)
	}
	full := dist.Assignment{}
	for id := range wf1.Tasks {
		full[id] = "ghost"
	}
	if _, err := c.Submit("r", wf1, full); err == nil ||
		!strings.Contains(err.Error(), "unknown node") {
		t.Errorf("unknown node accepted: %v", err)
	}
	for id := range wf1.Tasks {
		full[id] = "A"
	}
	ch, err := c.Submit("r", wf1, full)
	if err != nil {
		t.Fatal(err)
	}
	await(t, ch)
	if _, err := c.Submit("r", wf1, full); err == nil ||
		!strings.Contains(err.Error(), "duplicate run") {
		t.Errorf("duplicate run accepted: %v", err)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := dist.NewCluster(nil); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := dist.NewCluster(nil, ""); err == nil {
		t.Error("empty node name accepted")
	}
	if _, err := dist.NewCluster(nil, "A", "A"); err == nil {
		t.Error("duplicate node accepted")
	}
}
