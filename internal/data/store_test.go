package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInitAndGet(t *testing.T) {
	s := NewStore()
	s.Init("x", 7)
	v, ok := s.Get("x")
	if !ok || v.Value != 7 || v.Pos != InitPos || v.Writer != "" {
		t.Fatalf("Get = %+v, ok=%v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get on missing key reported ok")
	}
}

func TestInitTwicePanics(t *testing.T) {
	s := NewStore()
	s.Init("x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Init("x", 2)
}

func TestWriteOrdering(t *testing.T) {
	s := NewStore()
	s.Init("x", 0)
	s.Write("x", 10, 5, "t5", false)
	s.Write("x", 20, 9, "t9", false)
	// Out-of-order (recovery) insert between them.
	s.Write("x", 15, 7.5, "r1", true)

	chain := s.Chain("x")
	if len(chain) != 4 {
		t.Fatalf("chain length %d, want 4", len(chain))
	}
	for i := 1; i < len(chain); i++ {
		if chain[i-1].Pos >= chain[i].Pos {
			t.Fatalf("chain not sorted: %+v", chain)
		}
	}
	if v, _ := s.Get("x"); v.Value != 20 {
		t.Errorf("latest = %d, want 20", v.Value)
	}
}

func TestWriteDuplicatePositionPanics(t *testing.T) {
	s := NewStore()
	s.Write("x", 1, 3, "a", false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Write("x", 2, 3, "b", false)
}

func TestGetBefore(t *testing.T) {
	s := NewStore()
	s.Init("x", 0)
	s.Write("x", 10, 5, "t5", false)
	s.Write("x", 20, 9, "t9", false)

	cases := []struct {
		pos   float64
		want  Value
		found bool
	}{
		{pos: 0, found: false}, // strictly before the initial version: nothing
		{pos: 0.5, want: 0, found: true},
		{pos: 5, want: 0, found: true}, // strict: a reader at 5 sees pre-5
		{pos: 5.1, want: 10, found: true},
		{pos: 9.5, want: 20, found: true},
		{pos: 100, want: 20, found: true},
	}
	for _, c := range cases {
		v, ok := s.GetBefore("x", c.pos)
		if ok != c.found {
			t.Errorf("GetBefore(%g): found=%v, want %v", c.pos, ok, c.found)
			continue
		}
		if ok && v.Value != c.want {
			t.Errorf("GetBefore(%g) = %d, want %d", c.pos, v.Value, c.want)
		}
	}
}

func TestDeleteWritesExposesPriorVersion(t *testing.T) {
	s := NewStore()
	s.Init("x", 1)
	s.Init("y", 2)
	s.Write("x", 100, 3, "evil", false)
	s.Write("y", 200, 4, "evil", false)
	s.Write("x", 101, 5, "good", false)

	if n := s.DeleteWrites("evil"); n != 2 {
		t.Fatalf("deleted %d versions, want 2", n)
	}
	if v, _ := s.Get("y"); v.Value != 2 {
		t.Errorf("y = %d after undo, want initial 2", v.Value)
	}
	if v, _ := s.Get("x"); v.Value != 101 {
		t.Errorf("x = %d after undo, want 101 (later writer kept)", v.Value)
	}
	if n := s.DeleteWrites("evil"); n != 0 {
		t.Errorf("second delete removed %d, want 0", n)
	}
}

func TestSnapshotAndKeys(t *testing.T) {
	s := NewStore()
	s.Init("b", 2)
	s.Init("a", 1)
	s.Write("a", 11, 1, "t", false)
	snap := s.Snapshot()
	if snap["a"] != 11 || snap["b"] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v, want sorted [a b]", keys)
	}
}

func TestCloneIsolation(t *testing.T) {
	s := NewStore()
	s.Init("x", 1)
	c := s.Clone()
	c.Write("x", 2, 1, "t", false)
	if v, _ := s.Get("x"); v.Value != 1 {
		t.Error("Clone shares chains with original")
	}
	if v, _ := c.Get("x"); v.Value != 2 {
		t.Error("clone write lost")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := NewStore(), NewStore()
	a.Init("x", 1)
	b.Init("x", 1)
	if !Equal(a, b) {
		t.Fatal("identical stores compare unequal")
	}
	if d := Diff(a, b); d != "" {
		t.Fatalf("diff of equal stores: %q", d)
	}
	b.Write("x", 2, 1, "t", false)
	b.Init("y", 9)
	if Equal(a, b) {
		t.Fatal("different stores compare equal")
	}
	if d := Diff(a, b); d == "" {
		t.Fatal("empty diff for different stores")
	}
}

// TestUndoRedoRoundTrip is the core recovery-store property: writing a
// corrupt version, deleting it, and re-writing the clean value at the same
// position restores exactly the clean chain state.
func TestUndoRedoRoundTrip(t *testing.T) {
	clean := NewStore()
	attacked := NewStore()
	for _, s := range []*Store{clean, attacked} {
		s.Init("x", 5)
		s.Write("x", 50, 2, "t2", false)
	}
	clean.Write("x", 60, 3, "t3", false)
	attacked.Write("x", -999, 3, "t3", false) // corrupted execution

	attacked.DeleteWrites("t3")
	attacked.Write("x", 60, 3, "t3", true) // redo with the clean value

	if !Equal(clean, attacked) {
		t.Fatalf("round trip failed:\n%s", Diff(clean, attacked))
	}
}

// TestPositionalVisibilityProperty checks GetBefore against a brute-force
// scan over randomly built chains.
func TestPositionalVisibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		type wv struct {
			pos float64
			val Value
		}
		var hist []wv
		used := map[float64]bool{}
		for i := 0; i < 30; i++ {
			pos := float64(rng.Intn(100)) + float64(rng.Intn(4))*0.25
			if used[pos] {
				continue
			}
			used[pos] = true
			v := Value(rng.Intn(1000))
			s.Write("k", v, pos, "w", false)
			hist = append(hist, wv{pos, v})
		}
		for trial := 0; trial < 20; trial++ {
			q := float64(rng.Intn(110)) + rng.Float64()
			got, ok := s.GetBefore("k", q)
			// Brute force.
			best := wv{pos: -1}
			for _, h := range hist {
				if h.pos < q && h.pos > best.pos {
					best = h
				}
			}
			if (best.pos >= 0) != ok {
				return false
			}
			if ok && got.Value != best.val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompactBefore(t *testing.T) {
	s := NewStore()
	s.Init("x", 1)
	s.Write("x", 2, 3, "w3", false)
	s.Write("x", 3, 7, "w7", false)
	s.Write("x", 4, 9, "w9", false)
	s.Init("y", 5)

	// Horizon 7: keeps x@7 (the value as of 7) and x@9; drops x@0, x@3.
	if n := s.CompactBefore(7); n != 2 {
		t.Fatalf("discarded %d versions, want 2", n)
	}
	chain := s.Chain("x")
	if len(chain) != 2 || chain[0].Pos != 7 || chain[1].Pos != 9 {
		t.Errorf("chain after compaction: %+v", chain)
	}
	// y's single initial version is the value as of the horizon: kept.
	if _, ok := s.Get("y"); !ok {
		t.Error("y lost by compaction")
	}
	// Latest values unchanged.
	if v, _ := s.Get("x"); v.Value != 4 {
		t.Errorf("x = %d after compaction", v.Value)
	}
	// Idempotent.
	if n := s.CompactBefore(7); n != 0 {
		t.Errorf("second compaction discarded %d", n)
	}
	// Horizon before everything: no-op.
	s2 := NewStore()
	s2.Init("z", 1)
	s2.Write("z", 2, 5, "w", false)
	if n := s2.CompactBefore(-1); n != 0 {
		t.Errorf("pre-history horizon discarded %d", n)
	}
}
