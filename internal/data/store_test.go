package data

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestInitAndGet(t *testing.T) {
	s := NewStore()
	s.Init("x", 7)
	v, ok := s.Get("x")
	if !ok || v.Value != 7 || v.Pos != InitPos || v.Writer != "" {
		t.Fatalf("Get = %+v, ok=%v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get on missing key reported ok")
	}
}

func TestInitTwicePanics(t *testing.T) {
	s := NewStore()
	s.Init("x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Init("x", 2)
}

func TestWriteOrdering(t *testing.T) {
	s := NewStore()
	s.Init("x", 0)
	s.Write("x", 10, 5, "t5", false)
	s.Write("x", 20, 9, "t9", false)
	// Out-of-order (recovery) insert between them.
	s.Write("x", 15, 7.5, "r1", true)

	chain := s.Chain("x")
	if len(chain) != 4 {
		t.Fatalf("chain length %d, want 4", len(chain))
	}
	for i := 1; i < len(chain); i++ {
		if chain[i-1].Pos >= chain[i].Pos {
			t.Fatalf("chain not sorted: %+v", chain)
		}
	}
	if v, _ := s.Get("x"); v.Value != 20 {
		t.Errorf("latest = %d, want 20", v.Value)
	}
}

func TestWriteDuplicatePositionPanics(t *testing.T) {
	s := NewStore()
	s.Write("x", 1, 3, "a", false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Write("x", 2, 3, "b", false)
}

func TestGetBefore(t *testing.T) {
	s := NewStore()
	s.Init("x", 0)
	s.Write("x", 10, 5, "t5", false)
	s.Write("x", 20, 9, "t9", false)

	cases := []struct {
		pos   float64
		want  Value
		found bool
	}{
		{pos: 0, found: false}, // strictly before the initial version: nothing
		{pos: 0.5, want: 0, found: true},
		{pos: 5, want: 0, found: true}, // strict: a reader at 5 sees pre-5
		{pos: 5.1, want: 10, found: true},
		{pos: 9.5, want: 20, found: true},
		{pos: 100, want: 20, found: true},
	}
	for _, c := range cases {
		v, ok := s.GetBefore("x", c.pos)
		if ok != c.found {
			t.Errorf("GetBefore(%g): found=%v, want %v", c.pos, ok, c.found)
			continue
		}
		if ok && v.Value != c.want {
			t.Errorf("GetBefore(%g) = %d, want %d", c.pos, v.Value, c.want)
		}
	}
}

func TestDeleteWritesExposesPriorVersion(t *testing.T) {
	s := NewStore()
	s.Init("x", 1)
	s.Init("y", 2)
	s.Write("x", 100, 3, "evil", false)
	s.Write("y", 200, 4, "evil", false)
	s.Write("x", 101, 5, "good", false)

	if n := s.DeleteWrites("evil"); n != 2 {
		t.Fatalf("deleted %d versions, want 2", n)
	}
	if v, _ := s.Get("y"); v.Value != 2 {
		t.Errorf("y = %d after undo, want initial 2", v.Value)
	}
	if v, _ := s.Get("x"); v.Value != 101 {
		t.Errorf("x = %d after undo, want 101 (later writer kept)", v.Value)
	}
	if n := s.DeleteWrites("evil"); n != 0 {
		t.Errorf("second delete removed %d, want 0", n)
	}
}

func TestSnapshotAndKeys(t *testing.T) {
	s := NewStore()
	s.Init("b", 2)
	s.Init("a", 1)
	s.Write("a", 11, 1, "t", false)
	snap := s.Snapshot()
	if snap["a"] != 11 || snap["b"] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v, want sorted [a b]", keys)
	}
}

func TestCloneIsolation(t *testing.T) {
	s := NewStore()
	s.Init("x", 1)
	c := s.Clone()
	c.Write("x", 2, 1, "t", false)
	if v, _ := s.Get("x"); v.Value != 1 {
		t.Error("Clone shares chains with original")
	}
	if v, _ := c.Get("x"); v.Value != 2 {
		t.Error("clone write lost")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := NewStore(), NewStore()
	a.Init("x", 1)
	b.Init("x", 1)
	if !Equal(a, b) {
		t.Fatal("identical stores compare unequal")
	}
	if d := Diff(a, b); d != "" {
		t.Fatalf("diff of equal stores: %q", d)
	}
	b.Write("x", 2, 1, "t", false)
	b.Init("y", 9)
	if Equal(a, b) {
		t.Fatal("different stores compare equal")
	}
	if d := Diff(a, b); d == "" {
		t.Fatal("empty diff for different stores")
	}
}

// TestUndoRedoRoundTrip is the core recovery-store property: writing a
// corrupt version, deleting it, and re-writing the clean value at the same
// position restores exactly the clean chain state.
func TestUndoRedoRoundTrip(t *testing.T) {
	clean := NewStore()
	attacked := NewStore()
	for _, s := range []*Store{clean, attacked} {
		s.Init("x", 5)
		s.Write("x", 50, 2, "t2", false)
	}
	clean.Write("x", 60, 3, "t3", false)
	attacked.Write("x", -999, 3, "t3", false) // corrupted execution

	attacked.DeleteWrites("t3")
	attacked.Write("x", 60, 3, "t3", true) // redo with the clean value

	if !Equal(clean, attacked) {
		t.Fatalf("round trip failed:\n%s", Diff(clean, attacked))
	}
}

// TestPositionalVisibilityProperty checks GetBefore against a brute-force
// scan over randomly built chains.
func TestPositionalVisibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		type wv struct {
			pos float64
			val Value
		}
		var hist []wv
		used := map[float64]bool{}
		for i := 0; i < 30; i++ {
			pos := float64(rng.Intn(100)) + float64(rng.Intn(4))*0.25
			if used[pos] {
				continue
			}
			used[pos] = true
			v := Value(rng.Intn(1000))
			s.Write("k", v, pos, "w", false)
			hist = append(hist, wv{pos, v})
		}
		for trial := 0; trial < 20; trial++ {
			q := float64(rng.Intn(110)) + rng.Float64()
			got, ok := s.GetBefore("k", q)
			// Brute force.
			best := wv{pos: -1}
			for _, h := range hist {
				if h.pos < q && h.pos > best.pos {
					best = h
				}
			}
			if (best.pos >= 0) != ok {
				return false
			}
			if ok && got.Value != best.val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompactBefore(t *testing.T) {
	s := NewStore()
	s.Init("x", 1)
	s.Write("x", 2, 3, "w3", false)
	s.Write("x", 3, 7, "w7", false)
	s.Write("x", 4, 9, "w9", false)
	s.Init("y", 5)

	// Horizon 7: keeps x@7 (the value as of 7) and x@9; drops x@0, x@3.
	if n := s.CompactBefore(7); n != 2 {
		t.Fatalf("discarded %d versions, want 2", n)
	}
	chain := s.Chain("x")
	if len(chain) != 2 || chain[0].Pos != 7 || chain[1].Pos != 9 {
		t.Errorf("chain after compaction: %+v", chain)
	}
	// y's single initial version is the value as of the horizon: kept.
	if _, ok := s.Get("y"); !ok {
		t.Error("y lost by compaction")
	}
	// Latest values unchanged.
	if v, _ := s.Get("x"); v.Value != 4 {
		t.Errorf("x = %d after compaction", v.Value)
	}
	// Idempotent.
	if n := s.CompactBefore(7); n != 0 {
		t.Errorf("second compaction discarded %d", n)
	}
	// Horizon before everything: no-op.
	s2 := NewStore()
	s2.Init("z", 1)
	s2.Write("z", 2, 5, "w", false)
	if n := s2.CompactBefore(-1); n != 0 {
		t.Errorf("pre-history horizon discarded %d", n)
	}
}

func TestCompactChainMatchesStore(t *testing.T) {
	// CompactChain is the pure per-chain twin of Store.CompactBefore (the
	// durable snapshot encoder relies on them agreeing exactly). Randomized
	// chains, every flag combination, horizons on/off version boundaries.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		chain := make([]Version, 0, n)
		pos := 0.0
		for i := 0; i < n; i++ {
			pos += float64(1 + rng.Intn(3))
			chain = append(chain, Version{
				Pos:        pos,
				Writer:     fmt.Sprintf("w%d", i),
				Value:      Value(rng.Intn(50)),
				Recovery:   rng.Intn(3) == 0,
				Checkpoint: rng.Intn(4) == 0,
			})
		}
		horizon := float64(rng.Intn(int(pos)+3)) - 1
		input := append([]Version(nil), chain...)

		// The store gets its own copy: CompactBefore edits chains in place.
		s, err := NewStoreFromChains(map[Key][]Version{"k": append([]Version(nil), chain...)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s.CompactBefore(horizon)
		got := CompactChain(input, horizon)
		if !reflect.DeepEqual(s.Chain("k"), got) {
			t.Fatalf("trial %d (horizon %g):\n chain  %+v\n store  %+v\n pure   %+v",
				trial, horizon, input, s.Chain("k"), got)
		}
		// Purity: the input chain is untouched.
		if !reflect.DeepEqual(input, chain) {
			t.Fatalf("trial %d: CompactChain mutated its input", trial)
		}
	}
}

func TestCompactChainEdges(t *testing.T) {
	if got := CompactChain(nil, 5); got != nil {
		t.Errorf("nil chain compacted to %+v", got)
	}
	// Horizon exactly on a version's Pos: that version is the boundary.
	chain := []Version{{Pos: 1, Writer: "a", Value: 1}, {Pos: 5, Writer: "b", Value: 2}, {Pos: 9, Writer: "c", Value: 3}}
	got := CompactChain(chain, 5)
	if len(got) != 2 || got[0].Pos != 5 || !got[0].Checkpoint || got[1].Pos != 9 {
		t.Errorf("horizon-on-boundary: %+v", got)
	}
	// Horizon below everything: untouched, no boundary promotion.
	got = CompactChain(chain, 0.5)
	if !reflect.DeepEqual(got, chain) {
		t.Errorf("pre-history horizon altered the chain: %+v", got)
	}
	// A recovery version surviving as the boundary becomes permanent
	// history: Checkpoint set, Recovery cleared.
	got = CompactChain([]Version{{Pos: 2, Writer: "r", Value: 7, Recovery: true}}, 3)
	if len(got) != 1 || !got[0].Checkpoint || got[0].Recovery {
		t.Errorf("recovery boundary not promoted: %+v", got)
	}
	// Duplicate boundaries collapse to the latest.
	got = CompactChain([]Version{
		{Pos: 1, Value: 1, Checkpoint: true},
		{Pos: 4, Value: 2, Checkpoint: true},
		{Pos: 8, Value: 3},
	}, 4)
	if len(got) != 2 || got[0].Pos != 4 || got[1].Pos != 8 {
		t.Errorf("duplicate boundaries survived: %+v", got)
	}
	// Idempotence.
	once := CompactChain(chain, 5)
	if twice := CompactChain(once, 5); !reflect.DeepEqual(once, twice) {
		t.Errorf("not idempotent: %+v vs %+v", once, twice)
	}
}

func TestWriterIndexConsistency(t *testing.T) {
	// Random interleavings of every mutating operation must leave the
	// writer index in exact agreement with the chains.
	rng := rand.New(rand.NewSource(7))
	s := NewStore()
	keys := []Key{"a", "b", "c", "d"}
	writers := []string{"w1", "w2", "w3"}
	pos := 1.0
	for step := 0; step < 500; step++ {
		switch rng.Intn(6) {
		case 0, 1, 2:
			s.Write(keys[rng.Intn(len(keys))], Value(rng.Intn(100)), pos, writers[rng.Intn(len(writers))], rng.Intn(3) == 0)
			pos++
		case 3:
			s.DeleteWrites(writers[rng.Intn(len(writers))])
		case 4:
			s.DeleteRecoveryVersions()
		case 5:
			s.CompactBefore(pos - float64(rng.Intn(20)))
		}
		if err := s.CheckIndex(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if err := s.Clone().CheckIndex(); err != nil {
		t.Fatalf("clone: %v", err)
	}
}

func TestDeleteWritesBatch(t *testing.T) {
	s := NewStore()
	s.Init("x", 1)
	s.Write("x", 2, 1, "a", false)
	s.Write("x", 3, 2, "b", false)
	s.Write("y", 4, 3, "a", false)
	if n := s.DeleteWritesBatch([]string{"a", "b", "missing"}); n != 3 {
		t.Fatalf("deleted %d versions, want 3", n)
	}
	if v, _ := s.Get("x"); v.Value != 1 {
		t.Errorf("x = %d after batch undo, want initial 1", v.Value)
	}
	// y had only a's write: chain emptied, key dropped.
	if _, ok := s.Get("y"); ok {
		t.Error("y still present after its only writer was undone")
	}
	if err := s.CheckIndex(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactThenDeleteWritesKeepsChain(t *testing.T) {
	// Regression: compaction promotes a surviving version to a checkpoint
	// boundary; undoing its writer afterwards must not remove the boundary
	// (the history beneath it is gone — deleting it would corrupt every
	// later positional read on the chain).
	s := NewStore()
	s.Init("x", 1)
	s.Write("x", 10, 3, "w3", false)
	s.Write("x", 20, 7, "w7", true) // recovery write survives as the boundary
	s.Write("x", 30, 9, "w9", false)
	if n := s.CompactBefore(7); n != 2 {
		t.Fatalf("compaction discarded %d, want 2", n)
	}
	boundary := s.Chain("x")[0]
	if !boundary.Checkpoint || boundary.Recovery {
		t.Fatalf("boundary not promoted to permanent checkpoint: %+v", boundary)
	}
	// Undoing the boundary's writer is a no-op on the checkpoint.
	if n := s.DeleteWrites("w7"); n != 0 {
		t.Errorf("DeleteWrites removed %d checkpointed versions", n)
	}
	// Stripping recovery versions preserves it too.
	if n := s.DeleteRecoveryVersions(); n != 0 {
		t.Errorf("DeleteRecoveryVersions removed %d checkpointed versions", n)
	}
	if v, ok := s.GetBefore("x", 9); !ok || v.Value != 20 {
		t.Errorf("GetBefore(x, 9) = %+v, %v; want the checkpoint value 20", v, ok)
	}
	// Undoing a later writer still works and never empties past the boundary.
	s.DeleteWrites("w9")
	if v, _ := s.Get("x"); v.Value != 20 {
		t.Errorf("x = %d after undoing w9, want 20", v.Value)
	}
	if err := s.CheckIndex(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactCollapsesDuplicateBoundaries(t *testing.T) {
	// Chains that degenerate into runs of compaction boundaries (merges of
	// differently-compacted stores) collapse to the single latest boundary.
	s := NewStore()
	s.Init("x", 1)
	s.Write("x", 2, 4, "a", false)
	s.CompactBefore(1) // init version becomes a checkpoint
	other := NewStore()
	other.Init("x", 1)
	other.Write("x", 2, 4, "a", false)
	other.Write("x", 3, 6, "b", false)
	other.CompactBefore(4) // a's version becomes a checkpoint
	s.AdoptChains(other, []Key{"x"})
	// s now has checkpoint@0 replaced by other's chain: checkpoint@4, b@6.
	s.Write("x", 9, 8, "c", false)
	if n := s.CompactBefore(6); n != 1 {
		t.Fatalf("compaction discarded %d, want 1 (the stale boundary)", n)
	}
	chain := s.Chain("x")
	if len(chain) != 2 || !chain[0].Checkpoint || chain[0].Pos != 6 {
		t.Fatalf("chain after recompaction: %+v", chain)
	}
	if err := s.CheckIndex(); err != nil {
		t.Fatal(err)
	}
}

func TestAdoptChains(t *testing.T) {
	live := NewStore()
	live.Init("x", 1)
	live.Write("x", 2, 1, "a", false)
	live.Init("y", 5)
	live.Write("y", 6, 2, "b", false)
	live.Init("z", 9)

	repaired := NewStore()
	repaired.Init("x", 1)
	repaired.Write("x", 3, 1.0000001, "a", true)
	// Repaired store dropped z entirely.

	live.AdoptChains(repaired, []Key{"x", "z"})
	if v, _ := live.Get("x"); v.Value != 3 {
		t.Errorf("x = %d after adopt, want repaired 3", v.Value)
	}
	if _, ok := live.Get("z"); ok {
		t.Error("z survived adoption from a store without it")
	}
	// y untouched.
	if v, _ := live.Get("y"); v.Value != 6 {
		t.Errorf("y = %d after adopt, want 6", v.Value)
	}
	if err := live.CheckIndex(); err != nil {
		t.Fatal(err)
	}
	// Adoption deep-copies: mutating the source must not alias.
	repaired.Write("x", 99, 5, "c", false)
	if v, _ := live.Get("x"); v.Value != 3 {
		t.Errorf("x = %d after source mutation, want 3", v.Value)
	}
}

func TestDeleteRecoveryVersionsIn(t *testing.T) {
	s := NewStore()
	s.Init("x", 1)
	s.Write("x", 2, 1.5, "a", true)
	s.Init("y", 3)
	s.Write("y", 4, 2.5, "b", true)
	if n := s.DeleteRecoveryVersionsIn([]Key{"x"}); n != 1 {
		t.Fatalf("deleted %d, want 1", n)
	}
	if v, _ := s.Get("x"); v.Value != 1 {
		t.Errorf("x = %d, want 1", v.Value)
	}
	if v, _ := s.Get("y"); v.Value != 4 {
		t.Errorf("y = %d, want recovery version 4 preserved", v.Value)
	}
	if err := s.CheckIndex(); err != nil {
		t.Fatal(err)
	}
}
