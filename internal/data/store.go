// Package data implements the versioned object store that underlies the
// workflow system log. Every write creates a new version tagged with the
// writer's effective position (the commit LSN for original executions, a
// fractional position for recovery-time re-executions). Undoing a task is
// deleting its versions, which exposes the last version before the attack —
// exactly the undo(t) primitive of §III.A of the paper. Positional reads
// (GetBefore) give recovery re-executions a consistent view of the corrected
// history without blocking on anti-flow and output dependencies, the
// multi-version effect discussed in §III.D.
package data

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Key names a data object in the store.
type Key string

// Value is the content of a data object version. Workflow tasks compute
// integer values; richer payloads are encoded by the application.
type Value int64

// InitPos is the effective position of initial (pre-history) versions.
const InitPos = 0.0

// Version is one committed value of a data object.
type Version struct {
	// Pos is the effective position of the write in the corrected
	// history: the commit LSN for original task executions, fractional
	// for recovery writes inserted between original positions.
	Pos float64
	// Writer identifies the task instance that wrote the version; empty
	// for initial versions.
	Writer string
	// Value is the stored content.
	Value Value
	// Recovery marks versions written during attack recovery.
	Recovery bool
}

// Store is a multi-version key/value store. The zero value is not usable;
// call NewStore. Store is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	chains map[Key][]Version // ascending Pos
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{chains: make(map[Key][]Version)}
}

// Init installs an initial version (position InitPos, no writer) for key k.
// It panics if k already has versions, which always indicates a harness bug.
func (s *Store) Init(k Key, v Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.chains[k]) != 0 {
		panic(fmt.Sprintf("data: Init on non-empty chain %q", k))
	}
	s.chains[k] = append(s.chains[k], Version{Pos: InitPos, Value: v})
}

// Write appends a version for key k at position pos.
func (s *Store) Write(k Key, v Value, pos float64, writer string, recovery bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	chain := s.chains[k]
	ver := Version{Pos: pos, Writer: writer, Value: v, Recovery: recovery}
	// Fast path: appends are almost always in increasing position order.
	if n := len(chain); n == 0 || chain[n-1].Pos < pos {
		s.chains[k] = append(chain, ver)
		return
	}
	i := sort.Search(len(chain), func(i int) bool { return chain[i].Pos >= pos })
	if i < len(chain) && chain[i].Pos == pos {
		panic(fmt.Sprintf("data: duplicate version position %g for %q (writers %q, %q)",
			pos, k, chain[i].Writer, writer))
	}
	chain = append(chain, Version{})
	copy(chain[i+1:], chain[i:])
	chain[i] = ver
	s.chains[k] = chain
}

// Get returns the latest version of k. ok is false when k has no versions.
func (s *Store) Get(k Key) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[k]
	if len(chain) == 0 {
		return Version{}, false
	}
	return chain[len(chain)-1], true
}

// GetBefore returns the latest version of k with position strictly less than
// pos: the value a reader at effective position pos observes.
func (s *Store) GetBefore(k Key, pos float64) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[k]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].Pos >= pos })
	if i == 0 {
		return Version{}, false
	}
	return chain[i-1], true
}

// CompactBefore discards historical versions older than horizon, keeping
// for every key the latest version at or before the horizon (the current
// value as of that point) plus everything after it. It returns the number
// of versions discarded. Compaction reclaims the space the paper attributes
// to checkpoints (§I) — at the cost of recoverability: an undo that needs a
// pre-horizon version can no longer be performed, which the recovery engine
// detects against the log and refuses (ErrHorizon).
func (s *Store) CompactBefore(horizon float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for k, chain := range s.chains {
		// Find the last version with Pos ≤ horizon; drop everything
		// before it.
		keep := 0
		for i, v := range chain {
			if v.Pos <= horizon {
				keep = i
			} else {
				break
			}
		}
		if keep > 0 {
			n += keep
			s.chains[k] = append(chain[:0], chain[keep:]...)
		}
	}
	return n
}

// VersionAt returns the version of k at exactly position pos.
func (s *Store) VersionAt(k Key, pos float64) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[k]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].Pos >= pos })
	if i < len(chain) && chain[i].Pos == pos {
		return chain[i], true
	}
	return Version{}, false
}

// DeleteWrites removes every version written by the given writer and returns
// how many versions were deleted. This is the undo(t) primitive: deleting a
// task's versions exposes the last version before it, for every object it
// wrote.
func (s *Store) DeleteWrites(writer string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for k, chain := range s.chains {
		out := chain[:0]
		for _, v := range chain {
			if v.Writer == writer {
				n++
				continue
			}
			out = append(out, v)
		}
		s.chains[k] = out
	}
	return n
}

// DeleteRecoveryVersions removes every version written during recovery and
// returns how many were deleted. A new repair pass starts from the original
// committed versions and deterministically reconstructs all still-valid
// recovery state, so prior recovery versions never conflict with it.
func (s *Store) DeleteRecoveryVersions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for k, chain := range s.chains {
		out := chain[:0]
		for _, v := range chain {
			if v.Recovery {
				n++
				continue
			}
			out = append(out, v)
		}
		s.chains[k] = out
	}
	return n
}

// VersionsBy returns every version written by the given writer, keyed by
// object. At most one version per key can exist for one writer.
func (s *Store) VersionsBy(writer string) map[Key]Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Key]Version)
	for k, chain := range s.chains {
		for _, v := range chain {
			if v.Writer == writer {
				out[k] = v
			}
		}
	}
	return out
}

// Chain returns a copy of the full version chain for k, ascending by
// position.
func (s *Store) Chain(k Key) []Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Version, len(s.chains[k]))
	copy(out, s.chains[k])
	return out
}

// Keys returns all keys with at least one version, sorted.
func (s *Store) Keys() []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Key, 0, len(s.chains))
	for k, chain := range s.chains {
		if len(chain) > 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot returns the final (latest-version) value of every key.
func (s *Store) Snapshot() map[Key]Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Key]Value, len(s.chains))
	for k, chain := range s.chains {
		if len(chain) > 0 {
			out[k] = chain[len(chain)-1].Value
		}
	}
	return out
}

// Clone returns a deep copy of the store. Recovery iterations restart from a
// clone of the pristine post-attack store.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewStore()
	for k, chain := range s.chains {
		cp := make([]Version, len(chain))
		copy(cp, chain)
		c.chains[k] = cp
	}
	return c
}

// Equal reports whether the final values of both stores agree on every key.
// Keys missing from one store compare unequal unless missing from both.
func Equal(a, b *Store) bool {
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa) != len(sb) {
		return false
	}
	for k, v := range sa {
		if w, ok := sb[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of final-value differences
// between two stores, or "" when they are equal.
func Diff(a, b *Store) string {
	sa, sb := a.Snapshot(), b.Snapshot()
	keys := make(map[Key]struct{}, len(sa)+len(sb))
	for k := range sa {
		keys[k] = struct{}{}
	}
	for k := range sb {
		keys[k] = struct{}{}
	}
	sorted := make([]Key, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sb2 strings.Builder
	for _, k := range sorted {
		va, oka := sa[k]
		vb, okb := sb[k]
		switch {
		case !oka:
			fmt.Fprintf(&sb2, "%s: <missing> != %d\n", k, vb)
		case !okb:
			fmt.Fprintf(&sb2, "%s: %d != <missing>\n", k, va)
		case va != vb:
			fmt.Fprintf(&sb2, "%s: %d != %d\n", k, va, vb)
		}
	}
	return sb2.String()
}
