// Package data implements the versioned object store that underlies the
// workflow system log. Every write creates a new version tagged with the
// writer's effective position (the commit LSN for original executions, a
// fractional position for recovery-time re-executions). Undoing a task is
// deleting its versions, which exposes the last version before the attack —
// exactly the undo(t) primitive of §III.A of the paper. Positional reads
// (GetBefore) give recovery re-executions a consistent view of the corrected
// history without blocking on anti-flow and output dependencies, the
// multi-version effect discussed in §III.D.
//
// The store keeps a writer → key index alongside the chains, so the undo
// primitive (DeleteWrites, VersionsBy) costs O(versions by that writer)
// instead of a scan over every chain in the store — the difference between
// an undo set staging in microseconds and one that stalls the repair on a
// large store.
package data

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Key names a data object in the store.
type Key string

// Value is the content of a data object version. Workflow tasks compute
// integer values; richer payloads are encoded by the application.
type Value int64

// InitPos is the effective position of initial (pre-history) versions.
const InitPos = 0.0

// Version is one committed value of a data object.
type Version struct {
	// Pos is the effective position of the write in the corrected
	// history: the commit LSN for original task executions, fractional
	// for recovery writes inserted between original positions.
	Pos float64
	// Writer identifies the task instance that wrote the version; empty
	// for initial versions.
	Writer string
	// Value is the stored content.
	Value Value
	// Recovery marks versions written during attack recovery.
	Recovery bool
	// Checkpoint marks a compaction boundary: the surviving version that
	// carries the key's value as of the horizon. The history beneath it
	// has been discarded, so the version can never be undone —
	// DeleteWrites and DeleteRecoveryVersions preserve it (removing it
	// would expose nothing, corrupting the chain for every later reader).
	Checkpoint bool
}

// Store is a multi-version key/value store. The zero value is not usable;
// call NewStore. Store is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	chains map[Key][]Version // ascending Pos
	// writers[w][k] counts the versions written by w in k's chain. The
	// index makes DeleteWrites/VersionsBy proportional to the writer's
	// own version count. Counts (not booleans) because a replay pass may
	// transiently hold two versions of one writer on one key (an
	// original commit plus its repositioned re-execution).
	writers map[string]map[Key]int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		chains:  make(map[Key][]Version),
		writers: make(map[string]map[Key]int),
	}
}

// NewStoreFromChains builds a store directly from prebuilt version chains,
// taking ownership of the map and its slices. Chains must be non-empty and
// strictly ascending by position; the writer index is derived in one pass.
// This is the bulk-install path of the durable restore: replay workers
// materialize chains outside the store (no per-write lock traffic), then the
// whole state is installed at once.
func NewStoreFromChains(chains map[Key][]Version) (*Store, error) {
	s := NewStore()
	for k, chain := range chains {
		if len(chain) == 0 {
			return nil, fmt.Errorf("data: empty chain for %q", k)
		}
		for i, v := range chain {
			if i > 0 && chain[i-1].Pos >= v.Pos {
				return nil, fmt.Errorf("data: chain %q not ascending at index %d (%g after %g)",
					k, i, v.Pos, chain[i-1].Pos)
			}
			s.indexAdd(v.Writer, k)
		}
		s.chains[k] = chain
	}
	return s, nil
}

// ChainsCopy returns a deep copy of every version chain, keyed by object —
// the full store history a durable snapshot persists.
func (s *Store) ChainsCopy() map[Key][]Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Key][]Version, len(s.chains))
	for k, chain := range s.chains {
		cp := make([]Version, len(chain))
		copy(cp, chain)
		out[k] = cp
	}
	return out
}

// indexAdd records one version by writer w on key k. Callers hold mu.
func (s *Store) indexAdd(w string, k Key) {
	if w == "" {
		return
	}
	m := s.writers[w]
	if m == nil {
		m = make(map[Key]int)
		s.writers[w] = m
	}
	m[k]++
}

// indexDrop removes n versions by writer w on key k. Callers hold mu.
func (s *Store) indexDrop(w string, k Key, n int) {
	if w == "" || n == 0 {
		return
	}
	m := s.writers[w]
	if m == nil {
		return
	}
	if m[k] -= n; m[k] <= 0 {
		delete(m, k)
	}
	if len(m) == 0 {
		delete(s.writers, w)
	}
}

// Init installs an initial version (position InitPos, no writer) for key k.
// It panics if k already has versions, which always indicates a harness bug.
func (s *Store) Init(k Key, v Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.chains[k]) != 0 {
		panic(fmt.Sprintf("data: Init on non-empty chain %q", k))
	}
	s.chains[k] = append(s.chains[k], Version{Pos: InitPos, Value: v})
}

// Write appends a version for key k at position pos.
func (s *Store) Write(k Key, v Value, pos float64, writer string, recovery bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	chain := s.chains[k]
	ver := Version{Pos: pos, Writer: writer, Value: v, Recovery: recovery}
	// Fast path: appends are almost always in increasing position order.
	if n := len(chain); n == 0 || chain[n-1].Pos < pos {
		s.chains[k] = append(chain, ver)
		s.indexAdd(writer, k)
		return
	}
	i := sort.Search(len(chain), func(i int) bool { return chain[i].Pos >= pos })
	if i < len(chain) && chain[i].Pos == pos {
		panic(fmt.Sprintf("data: duplicate version position %g for %q (writers %q, %q)",
			pos, k, chain[i].Writer, writer))
	}
	chain = append(chain, Version{})
	copy(chain[i+1:], chain[i:])
	chain[i] = ver
	s.chains[k] = chain
	s.indexAdd(writer, k)
}

// Get returns the latest version of k. ok is false when k has no versions.
func (s *Store) Get(k Key) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[k]
	if len(chain) == 0 {
		return Version{}, false
	}
	return chain[len(chain)-1], true
}

// GetBefore returns the latest version of k with position strictly less than
// pos: the value a reader at effective position pos observes.
func (s *Store) GetBefore(k Key, pos float64) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[k]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].Pos >= pos })
	if i == 0 {
		return Version{}, false
	}
	return chain[i-1], true
}

// CompactBefore discards historical versions older than horizon, keeping
// for every key the latest version at or before the horizon (the current
// value as of that point) plus everything after it. It returns the number
// of versions discarded. Compaction reclaims the space the paper attributes
// to checkpoints (§I) — at the cost of recoverability: an undo that needs a
// pre-horizon version can no longer be performed, which the recovery engine
// detects against the log and refuses (ErrHorizon).
//
// The surviving boundary version is marked Checkpoint (and its Recovery flag
// cleared — a compacted boundary is permanent history): the version beneath
// it is gone, so later DeleteWrites/DeleteRecoveryVersions calls must not
// remove it. Chains that have degenerated into runs of duplicate compaction
// boundaries (possible when differently-compacted stores are merged through
// AdoptChains) collapse to the single latest boundary, and keys whose chains
// empty out are dropped from the store. The writer index is kept consistent
// throughout.
func (s *Store) CompactBefore(horizon float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for k, chain := range s.chains {
		// Find the last version with Pos ≤ horizon; drop everything
		// before it.
		keep := 0
		for i, v := range chain {
			if v.Pos <= horizon {
				keep = i
			} else {
				break
			}
		}
		if keep > 0 {
			for _, v := range chain[:keep] {
				s.indexDrop(v.Writer, k, 1)
			}
			n += keep
			chain = append(chain[:0], chain[keep:]...)
		}
		if len(chain) > 0 && chain[0].Pos <= horizon {
			chain[0].Checkpoint = true
			chain[0].Recovery = false
		}
		// Collapse leading duplicate boundaries: only the latest carries
		// information.
		for len(chain) >= 2 && chain[0].Checkpoint && chain[1].Checkpoint {
			s.indexDrop(chain[0].Writer, k, 1)
			n++
			chain = chain[1:]
		}
		if len(chain) == 0 {
			delete(s.chains, k)
			continue
		}
		s.chains[k] = chain
	}
	return n
}

// CompactChain compacts a single version chain at horizon with exactly
// Store.CompactBefore's semantics, as a pure function: the input is not
// modified, and a chain that empties out returns nil (CompactBefore deletes
// the key). The durable snapshot encoder uses it to persist chains already
// compacted at the snapshot epoch — the state a restore would produce
// anyway — instead of pre-horizon history that would be discarded at boot.
func CompactChain(chain []Version, horizon float64) []Version {
	keep := 0
	for i, v := range chain {
		if v.Pos <= horizon {
			keep = i
		} else {
			break
		}
	}
	out := append([]Version(nil), chain[keep:]...)
	if len(out) > 0 && out[0].Pos <= horizon {
		out[0].Checkpoint = true
		out[0].Recovery = false
	}
	for len(out) >= 2 && out[0].Checkpoint && out[1].Checkpoint {
		out = out[1:]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// VersionAt returns the version of k at exactly position pos.
func (s *Store) VersionAt(k Key, pos float64) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[k]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].Pos >= pos })
	if i < len(chain) && chain[i].Pos == pos {
		return chain[i], true
	}
	return Version{}, false
}

// DeleteWrites removes every version written by the given writer and returns
// how many versions were deleted. This is the undo(t) primitive: deleting a
// task's versions exposes the last version before it, for every object it
// wrote. Checkpoint versions are preserved (the history beneath a compaction
// boundary is gone; removing the boundary would corrupt the chain), and keys
// whose chains empty out are dropped. Cost is proportional to the writer's
// own chains via the writer index, not to the store size.
func (s *Store) DeleteWrites(writer string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteWritesLocked(writer)
}

// DeleteWritesBatch removes the versions of every listed writer in one lock
// acquisition — the undo-group staging path of the recovery executor.
func (s *Store) DeleteWritesBatch(writers []string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for _, w := range writers {
		n += s.deleteWritesLocked(w)
	}
	return n
}

func (s *Store) deleteWritesLocked(writer string) int {
	keys := make([]Key, 0, len(s.writers[writer]))
	for k := range s.writers[writer] {
		keys = append(keys, k)
	}
	var n int
	for _, k := range keys {
		chain := s.chains[k]
		out := chain[:0]
		removed := 0
		for _, v := range chain {
			if v.Writer == writer && !v.Checkpoint {
				removed++
				continue
			}
			out = append(out, v)
		}
		if removed == 0 {
			continue
		}
		n += removed
		s.indexDrop(writer, k, removed)
		if len(out) == 0 {
			delete(s.chains, k)
		} else {
			s.chains[k] = out
		}
	}
	return n
}

// DeleteRecoveryVersions removes every version written during recovery and
// returns how many were deleted. A new repair pass starts from the original
// committed versions and deterministically reconstructs all still-valid
// recovery state, so prior recovery versions never conflict with it.
func (s *Store) DeleteRecoveryVersions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for k := range s.chains {
		n += s.deleteRecoveryLocked(k)
	}
	return n
}

// DeleteRecoveryVersionsIn is DeleteRecoveryVersions restricted to the given
// keys. A damage-scoped repair pass (recovery.Options.ScopeToDamage) strips
// and rebuilds only the chains of the damaged components; recovery versions
// on untouched keys — left by earlier repairs of unrelated damage — must
// survive, because no walker will reconstruct them.
func (s *Store) DeleteRecoveryVersionsIn(keys []Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for _, k := range keys {
		n += s.deleteRecoveryLocked(k)
	}
	return n
}

func (s *Store) deleteRecoveryLocked(k Key) int {
	chain, ok := s.chains[k]
	if !ok {
		return 0
	}
	out := chain[:0]
	var n int
	for _, v := range chain {
		if v.Recovery && !v.Checkpoint {
			s.indexDrop(v.Writer, k, 1)
			n++
			continue
		}
		out = append(out, v)
	}
	if n == 0 {
		return 0
	}
	if len(out) == 0 {
		delete(s.chains, k)
	} else {
		s.chains[k] = out
	}
	return n
}

// VersionsBy returns every version written by the given writer, keyed by
// object, in O(versions by that writer) via the writer index.
func (s *Store) VersionsBy(writer string) map[Key]Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Key]Version)
	for k := range s.writers[writer] {
		for _, v := range s.chains[k] {
			if v.Writer == writer {
				out[k] = v
			}
		}
	}
	return out
}

// Chain returns a copy of the full version chain for k, ascending by
// position.
func (s *Store) Chain(k Key) []Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Version, len(s.chains[k]))
	copy(out, s.chains[k])
	return out
}

// Keys returns all keys with at least one version, sorted.
func (s *Store) Keys() []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Key, 0, len(s.chains))
	for k, chain := range s.chains {
		if len(chain) > 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot returns the final (latest-version) value of every key.
func (s *Store) Snapshot() map[Key]Value {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Key]Value, len(s.chains))
	for k, chain := range s.chains {
		if len(chain) > 0 {
			out[k] = chain[len(chain)-1].Value
		}
	}
	return out
}

// Clone returns a deep copy of the store. Recovery iterations restart from a
// clone of the pristine post-attack store.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewStore()
	for k, chain := range s.chains {
		cp := make([]Version, len(chain))
		copy(cp, chain)
		c.chains[k] = cp
	}
	for w, m := range s.writers {
		cm := make(map[Key]int, len(m))
		for k, n := range m {
			cm[k] = n
		}
		c.writers[w] = cm
	}
	return c
}

// AdoptChains replaces s's version chains for the given keys with deep
// copies of from's chains (keys absent from from are deleted), keeping the
// writer index consistent. The shard layer's recovery installer uses it to
// merge a repaired store's damaged-component chains into the live store
// while clean shards keep committing to their own keys.
func (s *Store) AdoptChains(from *Store, keys []Key) {
	incoming := make(map[Key][]Version, len(keys))
	from.mu.RLock()
	for _, k := range keys {
		if chain, ok := from.chains[k]; ok {
			cp := make([]Version, len(chain))
			copy(cp, chain)
			incoming[k] = cp
		}
	}
	from.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		for _, v := range s.chains[k] {
			s.indexDrop(v.Writer, k, 1)
		}
		chain, ok := incoming[k]
		if !ok {
			delete(s.chains, k)
			continue
		}
		s.chains[k] = chain
		for _, v := range chain {
			s.indexAdd(v.Writer, k)
		}
	}
}

// CheckIndex verifies the internal invariants — chains sorted ascending by
// position, no empty chains lingering in the map, and the writer index in
// exact agreement with the chains. Tests call it after mutation sequences;
// it is not needed in production paths.
func (s *Store) CheckIndex() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	want := make(map[string]map[Key]int)
	for k, chain := range s.chains {
		if len(chain) == 0 {
			return fmt.Errorf("data: empty chain left in map for %q", k)
		}
		for i, v := range chain {
			if i > 0 && chain[i-1].Pos >= v.Pos {
				return fmt.Errorf("data: chain %q not ascending at index %d", k, i)
			}
			if v.Writer == "" {
				continue
			}
			m := want[v.Writer]
			if m == nil {
				m = make(map[Key]int)
				want[v.Writer] = m
			}
			m[k]++
		}
	}
	if len(want) != len(s.writers) {
		return fmt.Errorf("data: writer index has %d writers, chains have %d", len(s.writers), len(want))
	}
	for w, m := range want {
		got := s.writers[w]
		if len(got) != len(m) {
			return fmt.Errorf("data: writer %q indexed on %d keys, chains show %d", w, len(got), len(m))
		}
		for k, n := range m {
			if got[k] != n {
				return fmt.Errorf("data: writer %q on %q indexed %d times, chains show %d", w, k, got[k], n)
			}
		}
	}
	return nil
}

// Equal reports whether the final values of both stores agree on every key.
// Keys missing from one store compare unequal unless missing from both.
func Equal(a, b *Store) bool {
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa) != len(sb) {
		return false
	}
	for k, v := range sa {
		if w, ok := sb[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of final-value differences
// between two stores, or "" when they are equal.
func Diff(a, b *Store) string {
	sa, sb := a.Snapshot(), b.Snapshot()
	keys := make(map[Key]struct{}, len(sa)+len(sb))
	for k := range sa {
		keys[k] = struct{}{}
	}
	for k := range sb {
		keys[k] = struct{}{}
	}
	sorted := make([]Key, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sb2 strings.Builder
	for _, k := range sorted {
		va, oka := sa[k]
		vb, okb := sb[k]
		switch {
		case !oka:
			fmt.Fprintf(&sb2, "%s: <missing> != %d\n", k, vb)
		case !okb:
			fmt.Fprintf(&sb2, "%s: %d != <missing>\n", k, va)
		case va != vb:
			fmt.Fprintf(&sb2, "%s: %d != %d\n", k, va, vb)
		}
	}
	return sb2.String()
}
