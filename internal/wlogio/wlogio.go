// Package wlogio persists the system log and the versioned store as JSON
// and restores them, so a recovery system can survive restarts and ship
// histories between machines for offline damage analysis. The paper's undo
// primitive depends on the durability of both structures (§III.A: undo
// reads "the last version of the data objects before the attack from the
// log of the workflow management system").
package wlogio

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"selfheal/internal/data"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// readObsJSON mirrors wlog.ReadObs.
type readObsJSON struct {
	Value     int64   `json:"value"`
	Writer    string  `json:"writer,omitempty"`
	WriterPos float64 `json:"writerPos"`
}

// entryJSON mirrors wlog.Entry.
type entryJSON struct {
	LSN    int                    `json:"lsn"`
	Run    string                 `json:"run,omitempty"`
	Task   string                 `json:"task"`
	Visit  int                    `json:"visit"`
	Forged bool                   `json:"forged,omitempty"`
	Reads  map[string]readObsJSON `json:"reads,omitempty"`
	Writes map[string]int64       `json:"writes,omitempty"`
	Chosen string                 `json:"chosen,omitempty"`
}

// versionJSON mirrors data.Version.
type versionJSON struct {
	Pos        float64 `json:"pos"`
	Writer     string  `json:"writer,omitempty"`
	Value      int64   `json:"value"`
	Recovery   bool    `json:"recovery,omitempty"`
	Checkpoint bool    `json:"checkpoint,omitempty"`
}

// snapshotJSON is the on-disk document.
type snapshotJSON struct {
	Format  int                      `json:"format"`
	Entries []entryJSON              `json:"entries"`
	Chains  map[string][]versionJSON `json:"chains"`
}

// formatVersion identifies the snapshot schema.
const formatVersion = 1

// Encode writes the log and store as a JSON snapshot.
func Encode(w io.Writer, log *wlog.Log, store *data.Store) error {
	snap := snapshotJSON{
		Format:  formatVersion,
		Entries: make([]entryJSON, 0, log.Len()-log.Base()),
		Chains:  make(map[string][]versionJSON),
	}
	// Range streams entries under the log's read lock instead of
	// materializing the Entries() copy — on a 100k-entry log that copy is
	// the dominant allocation of the whole encode.
	log.Range(func(e *wlog.Entry) bool {
		ej := entryJSON{
			LSN:    e.LSN,
			Run:    e.Run,
			Task:   string(e.Task),
			Visit:  e.Visit,
			Forged: e.Forged,
			Chosen: string(e.Chosen),
		}
		if len(e.Reads) > 0 {
			ej.Reads = make(map[string]readObsJSON, len(e.Reads))
			for k, o := range e.Reads {
				ej.Reads[string(k)] = readObsJSON{Value: int64(o.Value), Writer: o.Writer, WriterPos: o.WriterPos}
			}
		}
		if len(e.Writes) > 0 {
			ej.Writes = make(map[string]int64, len(e.Writes))
			for k, v := range e.Writes {
				ej.Writes[string(k)] = int64(v)
			}
		}
		snap.Entries = append(snap.Entries, ej)
		return true
	})
	for _, k := range store.Keys() {
		chain := store.Chain(k)
		vj := make([]versionJSON, 0, len(chain))
		for _, v := range chain {
			vj = append(vj, versionJSON{
				Pos: v.Pos, Writer: v.Writer, Value: int64(v.Value),
				Recovery: v.Recovery, Checkpoint: v.Checkpoint,
			})
		}
		snap.Chains[string(k)] = vj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("wlogio: encode: %w", err)
	}
	return nil
}

// Decode restores a log and store from a snapshot written by Encode.
func Decode(r io.Reader) (*wlog.Log, *data.Store, error) {
	var snap snapshotJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, nil, fmt.Errorf("wlogio: decode: %w", err)
	}
	if snap.Format != formatVersion {
		return nil, nil, fmt.Errorf("wlogio: unsupported snapshot format %d (want %d)", snap.Format, formatVersion)
	}
	sort.Slice(snap.Entries, func(i, j int) bool { return snap.Entries[i].LSN < snap.Entries[j].LSN })
	log := wlog.New()
	for i, ej := range snap.Entries {
		if ej.LSN != i+1 {
			return nil, nil, fmt.Errorf("wlogio: non-dense LSN %d at position %d", ej.LSN, i)
		}
		e := &wlog.Entry{
			Run:    ej.Run,
			Task:   wf.TaskID(ej.Task),
			Visit:  ej.Visit,
			Forged: ej.Forged,
			Chosen: wf.TaskID(ej.Chosen),
			Reads:  make(map[data.Key]wlog.ReadObs, len(ej.Reads)),
			Writes: make(map[data.Key]data.Value, len(ej.Writes)),
		}
		for k, o := range ej.Reads {
			e.Reads[data.Key(k)] = wlog.ReadObs{Value: data.Value(o.Value), Writer: o.Writer, WriterPos: o.WriterPos}
		}
		for k, v := range ej.Writes {
			e.Writes[data.Key(k)] = data.Value(v)
		}
		if _, err := log.Append(e); err != nil {
			return nil, nil, fmt.Errorf("wlogio: rebuild log: %w", err)
		}
	}
	// Bulk-install the chains (one validation pass, no per-write lock
	// traffic) and keep every version flag — the old per-version Write loop
	// silently dropped Checkpoint bits, so a compacted store did not survive
	// a round trip.
	chains := make(map[data.Key][]data.Version, len(snap.Chains))
	for k, vs := range snap.Chains {
		if len(vs) == 0 {
			continue
		}
		chain := make([]data.Version, 0, len(vs))
		for _, v := range vs {
			chain = append(chain, data.Version{
				Pos: v.Pos, Writer: v.Writer, Value: data.Value(v.Value),
				Recovery: v.Recovery, Checkpoint: v.Checkpoint,
			})
		}
		chains[data.Key(k)] = chain
	}
	store, err := data.NewStoreFromChains(chains)
	if err != nil {
		return nil, nil, fmt.Errorf("wlogio: rebuild store: %w", err)
	}
	return log, store, nil
}
