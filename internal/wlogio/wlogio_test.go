package wlogio

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

func TestRoundTripFig1(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, s.Log(), s.Store()); err != nil {
		t.Fatal(err)
	}
	log2, store2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if log2.Len() != s.Log().Len() {
		t.Fatalf("log length %d, want %d", log2.Len(), s.Log().Len())
	}
	for i, e := range log2.Entries() {
		o := s.Log().Entries()[i]
		if e.ID() != o.ID() || e.LSN != o.LSN || e.Chosen != o.Chosen || e.Forged != o.Forged {
			t.Errorf("entry %d differs: %+v vs %+v", i, e, o)
		}
		for k, obs := range o.Reads {
			if got := e.Reads[k]; got != obs {
				t.Errorf("entry %d read %s: %+v vs %+v", i, k, got, obs)
			}
		}
		for k, v := range o.Writes {
			if e.Writes[k] != v {
				t.Errorf("entry %d write %s differs", i, k)
			}
		}
	}
	if !data.Equal(s.Store(), store2) {
		t.Errorf("stores differ:\n%s", data.Diff(s.Store(), store2))
	}
	// Version metadata round trips too.
	for _, k := range s.Store().Keys() {
		a, b := s.Store().Chain(k), store2.Chain(k)
		if len(a) != len(b) {
			t.Fatalf("chain %s length differs", k)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("chain %s version %d: %+v vs %+v", k, i, a[i], b[i])
			}
		}
	}
}

// TestRecoveryAfterReload: the real durability property — a repair computed
// from a reloaded snapshot equals a repair computed from the live state.
func TestRecoveryAfterReload(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, s.Log(), s.Store()); err != nil {
		t.Fatal(err)
	}
	log2, store2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live, err := recovery.Repair(s.Store(), s.Log(), s.Specs, s.Bad, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := recovery.Repair(store2, log2, s.Specs, s.Bad, recovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !data.Equal(live.Store, reloaded.Store) {
		t.Errorf("reloaded repair diverged:\n%s", data.Diff(live.Store, reloaded.Store))
	}
	if len(live.Undone) != len(reloaded.Undone) {
		t.Errorf("undo sets differ: %d vs %d", len(live.Undone), len(reloaded.Undone))
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", "{"},
		{"wrong format", `{"format": 99, "entries": [], "chains": {}}`},
		{"non-dense lsn", `{"format":1,"entries":[{"lsn":2,"task":"t","visit":1}],"chains":{}}`},
		{"duplicate instance", `{"format":1,"entries":[
			{"lsn":1,"run":"r","task":"t","visit":1},
			{"lsn":2,"run":"r","task":"t","visit":1}],"chains":{}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := Decode(strings.NewReader(c.in)); err == nil {
				t.Errorf("accepted %q", c.in)
			}
		})
	}
}

func TestEncodeEmpty(t *testing.T) {
	var buf bytes.Buffer
	s, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	// Encode only the store of a fresh scenario with an empty log.
	if err := Encode(&buf, s.Log(), s.Store()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty output")
	}
	if _, _, err := Decode(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestRestartMidWorkload is the full durability story: a workload stops
// mid-flight, its log and store are snapshotted, a fresh process reloads
// them, resumes the in-flight runs at their frontiers, and finishes — ending
// in exactly the state of the uninterrupted execution.
func TestRestartMidWorkload(t *testing.T) {
	wf1, wf2 := wf.Fig1Specs()
	specs := map[string]*wf.Spec{"r1": wf1, "r2": wf2}

	mkEngine := func() (*engine.Engine, []*engine.Run) {
		st := data.NewStore()
		st.Init("e", 0)
		eng := engine.New(st, wlog.New())
		r1, err := eng.NewRun("r1", wf1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := eng.NewRun("r2", wf2)
		if err != nil {
			t.Fatal(err)
		}
		return eng, []*engine.Run{r1, r2}
	}

	// Uninterrupted reference.
	refEng, refRuns := mkEngine()
	if err := refEng.RunAll(context.Background(), refRuns...); err != nil {
		t.Fatal(err)
	}

	// Interrupted: three steps, snapshot, "restart", resume, finish.
	eng, runs := mkEngine()
	for _, idx := range []int{0, 1, 0} {
		if _, err := eng.Step(runs[idx]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Encode(&buf, eng.Log(), eng.Store()); err != nil {
		t.Fatal(err)
	}

	log2, store2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := engine.New(store2, log2)
	resumed, err := eng2.ResumeRuns(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 2 {
		t.Fatalf("resumed %d runs, want 2", len(resumed))
	}
	for _, r := range resumed {
		if r.Done() {
			t.Errorf("run %s resumed as done", r.ID)
		}
	}
	if err := eng2.RunAll(context.Background(), resumed...); err != nil {
		t.Fatal(err)
	}
	if !data.Equal(refEng.Store(), eng2.Store()) {
		t.Errorf("restarted execution diverged:\n%s", data.Diff(refEng.Store(), eng2.Store()))
	}
	if eng2.Log().Len() != refEng.Log().Len() {
		t.Errorf("log lengths differ: %d vs %d", eng2.Log().Len(), refEng.Log().Len())
	}
}

// TestCheckpointFlagRoundTrip: a compacted store keeps its checkpoint
// boundaries across Encode/Decode. The old per-version Write rebuild dropped
// the Checkpoint bit, so reloading a compacted snapshot produced a store
// whose compaction horizon was silently forgotten.
func TestCheckpointFlagRoundTrip(t *testing.T) {
	s, err := scenario.Fig1(true)
	if err != nil {
		t.Fatal(err)
	}
	s.Store().CompactBefore(2)
	var buf bytes.Buffer
	if err := Encode(&buf, s.Log(), s.Store()); err != nil {
		t.Fatal(err)
	}
	_, store2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sawCheckpoint := false
	for _, k := range s.Store().Keys() {
		a, b := s.Store().Chain(k), store2.Chain(k)
		if len(a) != len(b) {
			t.Fatalf("chain %s length %d vs %d", k, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("chain %s version %d: %+v vs %+v", k, i, a[i], b[i])
			}
			sawCheckpoint = sawCheckpoint || a[i].Checkpoint
		}
	}
	if !sawCheckpoint {
		t.Fatal("compaction left no checkpoint version; test exercises nothing")
	}
	if err := store2.CheckIndex(); err != nil {
		t.Errorf("reloaded store index: %v", err)
	}
}

// TestResumeCompletedRuns: complete runs come back Done and re-running them
// is a no-op.
func TestResumeCompletedRuns(t *testing.T) {
	s, err := scenario.Fig1(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, s.Log(), s.Store()); err != nil {
		t.Fatal(err)
	}
	log2, store2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := engine.New(store2, log2)
	resumed, err := eng2.ResumeRuns(s.Specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resumed {
		if !r.Done() {
			t.Errorf("completed run %s resumed as in-flight", r.ID)
		}
	}
	before := log2.Len()
	if err := eng2.RunAll(context.Background(), resumed...); err != nil {
		t.Fatal(err)
	}
	if log2.Len() != before {
		t.Error("re-running completed runs committed new work")
	}
}
