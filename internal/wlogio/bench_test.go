package wlogio

import (
	"bytes"
	"fmt"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/durable"
	"selfheal/internal/wlog"
)

// benchLog builds an n-entry log plus the store its writes produce — the
// same shape both snapshot codecs persist.
func benchLog(b *testing.B, n int) (*wlog.Log, *data.Store) {
	b.Helper()
	log := wlog.New()
	store := data.NewStore()
	for i := 0; i < n; i++ {
		k := data.Key(fmt.Sprintf("key-%02d", i%100))
		e := &wlog.Entry{
			Task:   "t",
			Visit:  i + 1,
			Forged: true,
			Reads:  map[data.Key]wlog.ReadObs{k: {Value: data.Value(i), Writer: "w", WriterPos: float64(i)}},
			Writes: map[data.Key]data.Value{k: data.Value(i + 1)},
		}
		if _, err := log.Append(e); err != nil {
			b.Fatal(err)
		}
		store.Write(k, data.Value(i+1), float64(e.LSN), "w", false)
	}
	return log, store
}

// BenchmarkSnapshotEncode compares the JSON snapshot writer against the
// binary per-entry codec the durable WAL uses for the same entries. The gap
// is why internal/durable frames binary records on the hot append path and
// JSON stays an offline interchange format.
func BenchmarkSnapshotEncode(b *testing.B) {
	const n = 10_000
	log, store := benchLog(b, n)
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := Encode(&buf, log, store); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-entries", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var dst []byte
			log.Range(func(e *wlog.Entry) bool {
				dst = durable.EncodeEntry(dst[:0], e)
				return true
			})
		}
	})
}

func BenchmarkSnapshotDecode(b *testing.B) {
	const n = 10_000
	log, store := benchLog(b, n)
	var buf bytes.Buffer
	if err := Encode(&buf, log, store); err != nil {
		b.Fatal(err)
	}
	doc := buf.Bytes()
	payloads := make([][]byte, 0, n)
	log.Range(func(e *wlog.Entry) bool {
		payloads = append(payloads, durable.EncodeEntry(nil, e))
		return true
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := Decode(bytes.NewReader(doc)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-entries", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range payloads {
				if _, err := durable.DecodeEntry(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
