package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

func newFig1Engine(t *testing.T) (*engine.Engine, *engine.Run, *engine.Run) {
	t.Helper()
	wf1, wf2 := wf.Fig1Specs()
	st := data.NewStore()
	st.Init("e", 0)
	eng := engine.New(st, wlog.New())
	r1, err := eng.NewRun("r1", wf1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.NewRun("r2", wf2)
	if err != nil {
		t.Fatal(err)
	}
	return eng, r1, r2
}

func TestStepExecutesAndCommits(t *testing.T) {
	eng, r1, _ := newFig1Engine(t)
	done, err := eng.Step(r1)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("run done after one step")
	}
	v, ok := eng.Store().Get("a")
	if !ok || v.Value != 1 {
		t.Errorf("a = %v, want 1", v)
	}
	if v.Writer != "r1/t1#1" || v.Pos != 1 {
		t.Errorf("version metadata = %+v", v)
	}
	e, ok := eng.Log().Get("r1/t1#1")
	if !ok {
		t.Fatal("t1 not committed to log")
	}
	if e.Writes["a"] != 1 {
		t.Errorf("logged write = %v", e.Writes)
	}
}

func TestRunCompletesCleanPath(t *testing.T) {
	eng, r1, _ := newFig1Engine(t)
	steps := 0
	for !r1.Done() {
		if _, err := eng.Step(r1); err != nil {
			t.Fatal(err)
		}
		if steps++; steps > 10 {
			t.Fatal("run did not complete")
		}
	}
	if steps != 4 {
		t.Errorf("clean path took %d steps, want 4 (t1 t2 t5 t6)", steps)
	}
	snap := eng.Store().Snapshot()
	if snap["f"] != 14 {
		t.Errorf("f = %d, want 14", snap["f"])
	}
	if _, ok := eng.Store().Get("c"); ok {
		t.Error("clean run executed wrong-path task t3")
	}
}

func TestAttackOverridesCompute(t *testing.T) {
	eng, r1, _ := newFig1Engine(t)
	eng.AddAttack(engine.Attack{
		Run: "r1", Task: "t1",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"a": 100}
		},
	})
	for !r1.Done() {
		if _, err := eng.Step(r1); err != nil {
			t.Fatal(err)
		}
	}
	snap := eng.Store().Snapshot()
	if snap["a"] != 100 {
		t.Errorf("a = %d, want corrupted 100", snap["a"])
	}
	// The corrupt value drives the run down P1: t3 and t4 execute.
	if snap["c"] != 42 {
		t.Errorf("c = %d, want 42 (wrong path taken)", snap["c"])
	}
	e, _ := eng.Log().Get("r1/t2#1")
	if e.Chosen != "t3" {
		t.Errorf("t2 chose %s under attack, want t3", e.Chosen)
	}
}

func TestAttackChooseOverride(t *testing.T) {
	eng, r1, _ := newFig1Engine(t)
	// Corrupt only the branch decision, not the data.
	eng.AddAttack(engine.Attack{
		Run: "r1", Task: "t2",
		Choose: func(map[data.Key]data.Value) wf.TaskID { return "t3" },
	})
	for !r1.Done() {
		if _, err := eng.Step(r1); err != nil {
			t.Fatal(err)
		}
	}
	e, _ := eng.Log().Get("r1/t2#1")
	if e.Chosen != "t3" {
		t.Errorf("chose %s, want forced t3", e.Chosen)
	}
	// Data of t2 is still benign.
	if v, _ := eng.Store().Get("b"); v.Value != 2 {
		t.Errorf("b = %d, want benign 2", v.Value)
	}
}

func TestInvalidChoiceRejected(t *testing.T) {
	eng, r1, _ := newFig1Engine(t)
	eng.AddAttack(engine.Attack{
		Run: "r1", Task: "t2",
		Choose: func(map[data.Key]data.Value) wf.TaskID { return "t9" },
	})
	var err error
	for !r1.Done() && err == nil {
		_, err = eng.Step(r1)
	}
	if err == nil || !strings.Contains(err.Error(), "invalid successor") {
		t.Fatalf("err = %v, want invalid successor", err)
	}
}

func TestReadsRecordObservedVersions(t *testing.T) {
	eng, r1, r2 := newFig1Engine(t)
	// t1 then t7 then t2: t2's read of a must name t1's version.
	if _, err := eng.Step(r1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(r2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(r1); err != nil {
		t.Fatal(err)
	}
	e, _ := eng.Log().Get("r1/t2#1")
	obs := e.Reads["a"]
	if obs.Writer != "r1/t1#1" || obs.WriterPos != 1 || obs.Value != 1 {
		t.Errorf("t2's read observation = %+v", obs)
	}
}

func TestMissingKeyReadsAsZero(t *testing.T) {
	spec, err := wf.NewBuilder("m", "t").
		Task("t").Reads("nothere").Writes("out").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"out": r["nothere"] + 5}
		}).
		End().Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(data.NewStore(), wlog.New())
	r, err := eng.NewRun("r", spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(r); err != nil {
		t.Fatal(err)
	}
	e, _ := eng.Log().Get("r/t#1")
	if e.Reads["nothere"].WriterPos != wlog.MissingPos {
		t.Errorf("missing key observation = %+v", e.Reads["nothere"])
	}
	if v, _ := eng.Store().Get("out"); v.Value != 5 {
		t.Errorf("out = %d, want 5", v.Value)
	}
}

func TestInterleaveProducesL1(t *testing.T) {
	eng, r1, r2 := newFig1Engine(t)
	eng.AddAttack(engine.Attack{
		Run: "r1", Task: "t1",
		Compute: func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"a": 100}
		},
	})
	order := []int{0, 1, 0, 1, 0, 0, 1, 0, 1}
	if err := eng.Interleave(context.Background(), []*engine.Run{r1, r2}, order, 0); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range eng.Log().Entries() {
		got = append(got, string(e.Task))
	}
	want := "t1 t7 t2 t8 t3 t4 t9 t6 t10"
	if strings.Join(got, " ") != want {
		t.Errorf("log = %s, want %s", strings.Join(got, " "), want)
	}
}

func TestInterleaveBadIndex(t *testing.T) {
	eng, r1, _ := newFig1Engine(t)
	if err := eng.Interleave(context.Background(), []*engine.Run{r1}, []int{2}, 0); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestRunAllCompletesEverything(t *testing.T) {
	eng, r1, r2 := newFig1Engine(t)
	if err := eng.RunAll(context.Background(), r1, r2); err != nil {
		t.Fatal(err)
	}
	if !r1.Done() || !r2.Done() {
		t.Error("RunAll left a run incomplete")
	}
	if eng.Log().Len() != 8 {
		t.Errorf("log has %d entries, want 8 (4+4 clean)", eng.Log().Len())
	}
}

func TestCyclicWorkflowVisits(t *testing.T) {
	// b loops through c until n ≥ 3; instances get increasing visits.
	spec, err := wf.NewBuilder("loop", "a").
		Task("a").Writes("n").
		Compute(func(map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"n": 0}
		}).Then("b").End().
		Task("b").Reads("n").Writes("n").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"n": r["n"] + 1}
		}).Then("c").End().
		Task("c").Reads("n").Writes("m").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"m": r["n"]}
		}).Then("b", "end").
		ChooseBy(wf.ThresholdChoose("n", 3, "b", "end")).End().
		Task("end").Reads("m").Writes("out").
		Compute(func(r map[data.Key]data.Value) map[data.Key]data.Value {
			return map[data.Key]data.Value{"out": r["m"] * 10}
		}).End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(data.NewStore(), wlog.New())
	r, err := eng.NewRun("r", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	// a, b#1, c#1, b#2, c#2, b#3, c#3, end = 8 commits.
	if eng.Log().Len() != 8 {
		t.Fatalf("log has %d entries, want 8", eng.Log().Len())
	}
	if _, ok := eng.Log().Get("r/b#3"); !ok {
		t.Error("third visit of b not distinguished")
	}
	if v, _ := eng.Store().Get("out"); v.Value != 30 {
		t.Errorf("out = %d, want 30", v.Value)
	}
}

func TestNonTerminatingRunCapped(t *testing.T) {
	spec, err := wf.NewBuilder("inf", "a").
		Task("a").Writes("x").Then("b").End().
		Task("b").Reads("x").Writes("x").Then("c").End().
		Task("c").Reads("x").Writes("x").Then("b", "end").
		ChooseBy(func(map[data.Key]data.Value) wf.TaskID { return "b" }).End().
		Task("end").End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(data.NewStore(), wlog.New())
	r, err := eng.NewRun("r", spec)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Interleave(context.Background(), []*engine.Run{r}, nil, 50)
	if err == nil || !strings.Contains(err.Error(), "50 steps") {
		t.Fatalf("err = %v, want step-budget error", err)
	}
}

func TestInjectForged(t *testing.T) {
	eng, r1, _ := newFig1Engine(t)
	if _, err := eng.Step(r1); err != nil { // t1 commits a=1
		t.Fatal(err)
	}
	inst, err := eng.InjectForged("", "evil", []data.Key{"a"}, map[data.Key]data.Value{"a": -7})
	if err != nil {
		t.Fatal(err)
	}
	if inst != "/evil#1" {
		t.Errorf("forged instance = %s", inst)
	}
	e, ok := eng.Log().Get(inst)
	if !ok || !e.Forged {
		t.Fatal("forged entry not committed/flagged")
	}
	if e.Reads["a"].Writer != "r1/t1#1" {
		t.Errorf("forged read observation = %+v", e.Reads["a"])
	}
	if v, _ := eng.Store().Get("a"); v.Value != -7 {
		t.Errorf("a = %d, want forged -7", v.Value)
	}
}

func TestNewRunRejectsInvalid(t *testing.T) {
	eng := engine.New(data.NewStore(), wlog.New())
	bad := &wf.Spec{Name: "x", Start: "nope", Tasks: map[wf.TaskID]*wf.Task{
		"t": {ID: "t"},
	}}
	if _, err := eng.NewRun("r", bad); err == nil {
		t.Error("invalid spec accepted")
	}
	good, _ := wf.Fig1Specs()
	if _, err := eng.NewRun("", good); err == nil {
		t.Error("empty run ID accepted")
	}
}

// TestTaskFailureVsAttackRecovery encodes the paper's §VII distinction:
// a malicious task that fails before committing leaves no effects in the
// system — the log and store are untouched — so attack recovery has nothing
// to do for it (failure handling, not attack recovery, deals with the
// aborted run).
func TestTaskFailureVsAttackRecovery(t *testing.T) {
	eng, r1, _ := newFig1Engine(t)
	eng.AddAttack(engine.Attack{Run: "r1", Task: "t2", Crash: true})

	if _, err := eng.Step(r1); err != nil { // t1 commits
		t.Fatal(err)
	}
	done, err := eng.Step(r1) // t2 crashes
	var tf *engine.TaskFailure
	if !errors.As(err, &tf) {
		t.Fatalf("err = %v, want TaskFailure", err)
	}
	if tf.Inst != "r1/t2#1" {
		t.Errorf("failed instance = %s", tf.Inst)
	}
	if !done || !r1.Done() || !r1.Failed() {
		t.Error("run not marked failed")
	}
	// Nothing committed for t2: the log holds only t1, the store only a.
	if eng.Log().Len() != 1 {
		t.Errorf("log has %d entries, want 1", eng.Log().Len())
	}
	if _, ok := eng.Store().Get("b"); ok {
		t.Error("crashed task wrote to the store")
	}
}

func TestFailureDoesNotSpreadDamage(t *testing.T) {
	// A crashing t1 means t2 never executes: no incorrect data exists,
	// exactly the "failed malicious tasks have no effects" case.
	eng, r1, r2 := newFig1Engine(t)
	eng.AddAttack(engine.Attack{Run: "r1", Task: "t1", Crash: true})
	_, err := eng.Step(r1)
	var tf *engine.TaskFailure
	if !errors.As(err, &tf) {
		t.Fatalf("err = %v", err)
	}
	// The other workflow continues unharmed.
	if err := eng.RunAll(context.Background(), r2); err != nil {
		t.Fatal(err)
	}
	if v, _ := eng.Store().Get("h"); v.Value != 3 {
		t.Errorf("h = %d, want 3 (a missing reads as 0, g=3)", v.Value)
	}
}
