// Package engine executes workflow instances against the versioned store,
// committing every task execution to the system log. It is the normal-
// processing substrate of the paper's architecture (Fig 2): the scheduler
// picks minimal(S, ≺) among runnable tasks, tasks read the latest committed
// versions, and every commit records the exact versions read so the recovery
// analyzer can compute precise dependencies later.
//
// The engine is also the attack-injection point: an Attack replaces a task
// instance's compute (and, for choice nodes, branch selection) with
// malicious versions, and InjectForged commits a task that is not part of
// any workflow specification at all.
//
// Every commit (Step and InjectForged) flows through wlog.Log.Append, whose
// OnAppend hook is the engine's commit-time observation point: the runtime
// subscribes deps.IncrementalGraph there so dependence tracking is
// maintained in O(Δ) alongside normal processing instead of being rebuilt
// from the log at every recovery analysis.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"selfheal/internal/data"
	"selfheal/internal/obs"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Sentinel errors of the execution layers. Handlers map them to HTTP status
// codes with errors.Is (internal/httpapi), so every layer that rejects a
// submission wraps the matching sentinel instead of inventing an ad-hoc
// string.
var (
	// ErrBadSpec marks an invalid workflow specification or run identity.
	ErrBadSpec = errors.New("invalid workflow spec")
	// ErrRunExists marks a submission reusing an already-registered run ID.
	ErrRunExists = errors.New("run already exists")
	// ErrUnknownRun marks a lookup of a run ID nothing has registered.
	ErrUnknownRun = errors.New("unknown run")
)

// Run is one in-flight workflow instance.
type Run struct {
	// ID identifies the run in the system log.
	ID string
	// Spec is the workflow being executed.
	Spec *wf.Spec

	cur    wf.TaskID
	visits map[wf.TaskID]int
	done   bool
	failed bool
}

// Done reports whether the run reached an end node.
func (r *Run) Done() bool { return r.done }

// Current returns the task the run will execute next.
func (r *Run) Current() wf.TaskID { return r.cur }

// VisitCounts returns a copy of the run's per-task visit counters — the
// state a durable snapshot persists so a restored run keeps minting instance
// IDs that never collide with entries committed before the snapshot, even
// though those entries are no longer in the (truncated) log.
func (r *Run) VisitCounts() map[wf.TaskID]int {
	out := make(map[wf.TaskID]int, len(r.visits))
	for t, n := range r.visits {
		out[t] = n
	}
	return out
}

// Attack describes a corruption of one task instance: when the engine
// executes the matching instance, it uses the malicious Compute (and Choose,
// for choice nodes) instead of the specification's.
type Attack struct {
	Run   string
	Task  wf.TaskID
	Visit int
	// Compute overrides the task's compute function; nil keeps the
	// benign computation (an attack may corrupt only the branch choice).
	Compute wf.ComputeFunc
	// Choose overrides branch selection for choice nodes; nil keeps the
	// specification's selection.
	Choose wf.ChooseFunc
	// Crash makes the instance fail before committing: nothing is
	// written, nothing is logged, and the run aborts. The paper's §VII
	// distinction between failure handling and attack recovery rests on
	// this: a malicious task that fails has no effects, so attack
	// recovery has nothing to do for it.
	Crash bool
}

// TaskFailure is returned by Step when the executing instance crashed
// before committing.
type TaskFailure struct {
	Inst wlog.InstanceID
}

func (e *TaskFailure) Error() string {
	return fmt.Sprintf("engine: task %s failed before committing", e.Inst)
}

// Failed reports whether the run aborted due to a task failure.
func (r *Run) Failed() bool { return r.failed }

// Engine executes runs against a store and a log. The engine itself is safe
// for concurrent use by multiple goroutines as long as each Run is driven by
// at most one goroutine at a time (runs carry unsynchronized per-run state);
// the sharded executor (internal/shard) relies on exactly that contract.
type Engine struct {
	mu      sync.RWMutex // guards store (swap) and attacks
	store   *data.Store
	log     *wlog.Log
	attacks map[wlog.InstanceID]*Attack
	// o is the optional instrumentation (Observe); zero means off.
	o engObs
}

// engObs is the engine's instrumentation: commit and forged-injection
// counters plus a per-Step latency histogram.
type engObs struct {
	commits     *obs.Counter
	forged      *obs.Counter
	stepSeconds *obs.Histogram
}

// Observe wires the engine's instrumentation into reg (metric catalog in
// docs/OBSERVABILITY.md). A nil registry leaves instrumentation off, the
// default; when off, Step pays only nil checks.
func (e *Engine) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.o = engObs{
		commits:     reg.Counter(obs.MEngineCommits),
		forged:      reg.Counter(obs.MEngineForged),
		stepSeconds: reg.Histogram(obs.MEngineStepSeconds, obs.LatencyBuckets),
	}
}

// New returns an engine committing to the given store and log.
func New(store *data.Store, log *wlog.Log) *Engine {
	return &Engine{
		store:   store,
		log:     log,
		attacks: make(map[wlog.InstanceID]*Attack),
	}
}

// Store returns the engine's store.
func (e *Engine) Store() *data.Store {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store
}

// SwapStore replaces the engine's store. The recovery scheduler installs the
// repaired store this way after executing a recovery unit; no commit may be
// in flight during the swap (the sharded executor serializes the swap
// through its commit pipeline).
func (e *Engine) SwapStore(s *data.Store) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.store = s
}

// Log returns the engine's log.
func (e *Engine) Log() *wlog.Log { return e.log }

// AddAttack registers an attack. Visit numbers are 1-based; Visit 0 means
// visit 1.
func (e *Engine) AddAttack(a Attack) {
	if a.Visit == 0 {
		a.Visit = 1
	}
	cp := a
	e.mu.Lock()
	defer e.mu.Unlock()
	e.attacks[wlog.FormatInstance(a.Run, a.Task, a.Visit)] = &cp
}

// attack returns the registered attack for inst, if any.
func (e *Engine) attack(inst wlog.InstanceID) *Attack {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.attacks[inst]
}

// NewRun starts a run of spec under the given ID. Rejections wrap
// ErrBadSpec so submission layers can classify them with errors.Is.
func (e *Engine) NewRun(id string, spec *wf.Spec) (*Run, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("engine: run %s: %w: %w", id, ErrBadSpec, err)
	}
	if id == "" {
		return nil, fmt.Errorf("engine: %w: empty run ID", ErrBadSpec)
	}
	return &Run{ID: id, Spec: spec, cur: spec.Start, visits: make(map[wf.TaskID]int)}, nil
}

// RestoreRun rebuilds a run from externally persisted state: frontier task,
// visit counters, and completion flags, exactly as captured by VisitCounts/
// Current/Done/Failed. Unlike Resync it does not consult the log — the
// durable restore path uses it for runs whose early entries were truncated
// at a snapshot boundary, where a trace-derived visit count would be wrong.
func (e *Engine) RestoreRun(id string, spec *wf.Spec, cur wf.TaskID, visits map[wf.TaskID]int, done, failed bool) (*Run, error) {
	r, err := e.NewRun(id, spec)
	if err != nil {
		return nil, err
	}
	if !done && !failed {
		if _, ok := spec.Tasks[cur]; !ok {
			return nil, fmt.Errorf("engine: restore of %s at unknown task %q", id, cur)
		}
	}
	for t, n := range visits {
		r.visits[t] = n
	}
	r.cur = cur
	r.done = done || failed
	r.failed = failed
	return r, nil
}

// Resync repositions an in-flight run at a new frontier after recovery
// rewrote its execution path. Visit counters are rebuilt from the log so
// future instance IDs never collide with committed entries — a task whose
// first instance was undone as wrong-path work re-executes later under the
// next visit number.
func (e *Engine) Resync(r *Run, cur wf.TaskID, done bool) error {
	if !done {
		if _, ok := r.Spec.Tasks[cur]; !ok {
			return fmt.Errorf("engine: resync of %s to unknown task %q", r.ID, cur)
		}
	}
	visits := make(map[wf.TaskID]int)
	for _, entry := range e.log.Trace(r.ID, true) {
		if entry.Visit > visits[entry.Task] {
			visits[entry.Task] = entry.Visit
		}
	}
	r.visits = visits
	r.cur = cur
	r.done = done
	return nil
}

// Prepared is one computed-but-uncommitted task execution: the read view,
// the computed writes and the chosen successor of the run's next task. A
// Prepared is produced by Prepare and consumed exactly once by Commit or
// CommitBatch; between the two, the run must not be stepped again. The
// split is the sharded executor's building block: shards prepare steps in
// parallel and funnel the commits through a group-commit pipeline.
type Prepared struct {
	run    *Run
	entry  *wlog.Entry
	writes map[data.Key]data.Value
	next   wf.TaskID
	done   bool
}

// Run returns the run the prepared step advances.
func (p *Prepared) Run() *Run { return p.run }

// Entry returns the log entry the commit will append.
func (p *Prepared) Entry() *wlog.Entry { return p.entry }

// Prepare computes the run's next task execution without committing it: it
// reads the latest store versions (recording the exact versions observed),
// runs the (possibly attacked) compute, and selects the successor. It
// returns nil when the run is already complete. A crashing attack marks the
// run failed and returns the TaskFailure, exactly like Step.
func (e *Engine) Prepare(r *Run) (*Prepared, error) {
	if r.done {
		return nil, nil
	}
	task := r.Spec.Tasks[r.cur]
	r.visits[r.cur]++
	visit := r.visits[r.cur]
	inst := wlog.FormatInstance(r.ID, r.cur, visit)
	attack := e.attack(inst)
	if attack != nil && attack.Crash {
		r.done = true
		r.failed = true
		return nil, &TaskFailure{Inst: inst}
	}

	entry := &wlog.Entry{
		Run:   r.ID,
		Task:  r.cur,
		Visit: visit,
		Reads: make(map[data.Key]wlog.ReadObs, len(task.Reads)),
	}
	// The commit position is the next LSN; reads observe everything
	// committed before it. Reserve the LSN by appending at the end, so
	// compute the read view first against "latest".
	store := e.Store()
	reads := make(map[data.Key]data.Value, len(task.Reads))
	for _, k := range task.Reads {
		v, ok := store.Get(k)
		if !ok {
			entry.Reads[k] = wlog.ReadObs{Value: 0, WriterPos: wlog.MissingPos}
			reads[k] = 0
			continue
		}
		entry.Reads[k] = wlog.ReadObs{Value: v.Value, Writer: v.Writer, WriterPos: v.Pos}
		reads[k] = v.Value
	}

	compute := task.Compute
	if attack != nil && attack.Compute != nil {
		compute = attack.Compute
	}
	written := make(map[data.Key]data.Value, len(task.Writes))
	if compute != nil {
		out := compute(reads)
		for _, k := range task.Writes {
			written[k] = out[k]
		}
	} else {
		for _, k := range task.Writes {
			written[k] = 0
		}
	}
	entry.Writes = written
	p := &Prepared{run: r, entry: entry, writes: written}

	// Branch selection for choice nodes.
	switch {
	case len(task.Next) == 0:
		p.done = true
	case len(task.Next) == 1:
		p.next = task.Next[0]
	default:
		choose := task.Choose
		if attack != nil && attack.Choose != nil {
			choose = attack.Choose
		}
		p.next = choose(reads)
		if !validNext(task, p.next) {
			return nil, fmt.Errorf("engine: %s chose invalid successor %q", inst, p.next)
		}
		entry.Chosen = p.next
	}
	return p, nil
}

// apply installs a committed prepared step: store writes at the assigned
// LSN, then the run's frontier advance.
func (e *Engine) apply(p *Prepared, lsn int) {
	e.o.commits.Inc()
	store := e.Store()
	inst := p.entry.ID()
	for k, v := range p.writes {
		store.Write(k, v, float64(lsn), string(inst), false)
	}
	if p.done {
		p.run.done = true
	} else {
		p.run.cur = p.next
	}
}

// Commit appends a prepared step to the log and applies its effects.
func (e *Engine) Commit(p *Prepared) error {
	lsn, err := e.log.Append(p.entry)
	if err != nil {
		return fmt.Errorf("engine: commit %s: %w", p.entry.ID(), err)
	}
	e.apply(p, lsn)
	return nil
}

// CommitBatch group-commits prepared steps from distinct runs: one
// wlog.AppendBatch (a single log-lock acquisition, consecutive LSNs, hooks
// in LSN order), then the store writes and frontier advances in the same
// order. The batch is atomic: on a duplicate instance nothing commits.
func (e *Engine) CommitBatch(ps []*Prepared) error {
	if len(ps) == 0 {
		return nil
	}
	entries := make([]*wlog.Entry, len(ps))
	for i, p := range ps {
		entries[i] = p.entry
	}
	first, err := e.log.AppendBatch(entries)
	if err != nil {
		return fmt.Errorf("engine: commit batch of %d: %w", len(ps), err)
	}
	for i, p := range ps {
		e.apply(p, first+i)
	}
	return nil
}

// Step executes the run's next task and commits it. It returns true when the
// run has completed (including when it was already complete).
func (e *Engine) Step(r *Run) (bool, error) {
	if r.done {
		return true, nil
	}
	if e.o.stepSeconds != nil {
		defer e.observeStep(time.Now())
	}
	p, err := e.Prepare(r)
	if err != nil {
		return r.done, err
	}
	if err := e.Commit(p); err != nil {
		return false, err
	}
	return r.done, nil
}

// observeStep records one Step's wall-clock latency.
func (e *Engine) observeStep(start time.Time) {
	e.o.stepSeconds.Observe(time.Since(start).Seconds())
}

func validNext(task *wf.Task, next wf.TaskID) bool {
	for _, n := range task.Next {
		if n == next {
			return true
		}
	}
	return false
}

// ResumeRuns reconstructs the in-flight runs of a (reloaded) log: for every
// run recorded in the engine's log that has a spec, a Run positioned at its
// committed frontier is returned — complete runs come back Done. Together
// with wlogio this lets a workflow system continue exactly where it stopped
// after a restart. Forged entries are ignored when deriving frontiers.
func (e *Engine) ResumeRuns(specs map[string]*wf.Spec) ([]*Run, error) {
	var out []*Run
	for _, runID := range e.log.Runs() {
		spec, ok := specs[runID]
		if !ok {
			// Spec-less runs (forged-only pseudo-runs) have nothing to
			// resume; a real run without a spec is the caller's bug.
			for _, entry := range e.log.Trace(runID, true) {
				if !entry.Forged {
					return nil, fmt.Errorf("engine: run %s in log has no spec", runID)
				}
			}
			continue
		}
		r, err := e.NewRun(runID, spec)
		if err != nil {
			return nil, err
		}
		trace := e.log.Trace(runID, false)
		if len(trace) == 0 {
			out = append(out, r)
			continue
		}
		last := trace[len(trace)-1]
		task := spec.Tasks[last.Task]
		var cur wf.TaskID
		done := false
		switch {
		case len(task.Next) == 0:
			done = true
		case len(task.Next) == 1:
			cur = task.Next[0]
		default:
			cur = last.Chosen
			if cur == "" {
				return nil, fmt.Errorf("engine: run %s frontier %s has no recorded choice", runID, last.ID())
			}
		}
		if err := e.Resync(r, cur, done); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Interleave executes the runs following an explicit schedule: order[i]
// names the index of the run to step next. Completed runs are skipped. After
// the schedule is exhausted, remaining runs are completed round-robin. A
// step budget guards against non-terminating cyclic workflows, and a
// cancelled ctx stops the batch between steps.
func (e *Engine) Interleave(ctx context.Context, runs []*Run, order []int, maxSteps int) error {
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	steps := 0
	step := func(r *Run) error {
		if r.Done() {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if steps++; steps > maxSteps {
			return fmt.Errorf("engine: exceeded %d steps; cyclic workflow not terminating?", maxSteps)
		}
		_, err := e.Step(r)
		return err
	}
	for _, idx := range order {
		if idx < 0 || idx >= len(runs) {
			return fmt.Errorf("engine: interleave index %d out of range", idx)
		}
		if err := step(runs[idx]); err != nil {
			return err
		}
	}
	for {
		active := false
		for _, r := range runs {
			if r.Done() {
				continue
			}
			active = true
			if err := step(r); err != nil {
				return err
			}
		}
		if !active {
			return nil
		}
	}
}

// RunAll completes all runs with round-robin interleaving.
func (e *Engine) RunAll(ctx context.Context, runs ...*Run) error {
	return e.Interleave(ctx, runs, nil, 0)
}

// InjectForged commits a forged task: an execution injected by the attacker
// that belongs to no workflow specification. It reads the given keys
// (recording observations like a normal task) and writes the given values.
// Forged tasks are identified in the log and are undone — never redone —
// during recovery.
func (e *Engine) InjectForged(run string, task wf.TaskID, readKeys []data.Key, writes map[data.Key]data.Value) (wlog.InstanceID, error) {
	entry := &wlog.Entry{
		Run:    run,
		Task:   task,
		Visit:  1,
		Forged: true,
		Reads:  make(map[data.Key]wlog.ReadObs, len(readKeys)),
		Writes: writes,
	}
	store := e.Store()
	for _, k := range readKeys {
		v, ok := store.Get(k)
		if !ok {
			entry.Reads[k] = wlog.ReadObs{Value: 0, WriterPos: wlog.MissingPos}
			continue
		}
		entry.Reads[k] = wlog.ReadObs{Value: v.Value, Writer: v.Writer, WriterPos: v.Pos}
	}
	inst := entry.ID()
	lsn, err := e.log.Append(entry)
	if err != nil {
		return "", fmt.Errorf("engine: inject forged %s: %w", inst, err)
	}
	e.o.forged.Inc()
	for k, v := range writes {
		store.Write(k, v, float64(lsn), string(inst), false)
	}
	return inst, nil
}
