package engine_test

import (
	"context"
	"errors"
	"testing"

	"selfheal/internal/data"
	"selfheal/internal/engine"
	"selfheal/internal/wf"
	"selfheal/internal/wlog"
)

// Prepare+CommitBatch over runs with disjoint keys must produce exactly the
// state and log a serial Step loop produces.
func TestPrepareCommitBatchMatchesSteps(t *testing.T) {
	wf1, wf2 := wf.Fig1Specs()

	ref := engine.New(seedStore(), wlog.New())
	rr1, _ := ref.NewRun("r1", wf1)
	rr2, _ := ref.NewRun("r2", wf2)

	eng := engine.New(seedStore(), wlog.New())
	r1, _ := eng.NewRun("r1", wf1)
	r2, _ := eng.NewRun("r2", wf2)

	// Reference: alternate r1, r2 serially.
	for !rr1.Done() || !rr2.Done() {
		for _, r := range []*engine.Run{rr1, rr2} {
			if !r.Done() {
				if _, err := ref.Step(r); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Batched: prepare both runs' next steps, group-commit them in the
	// same order the serial loop used.
	for !r1.Done() || !r2.Done() {
		var batch []*engine.Prepared
		for _, r := range []*engine.Run{r1, r2} {
			if r.Done() {
				continue
			}
			p, err := eng.Prepare(r)
			if err != nil {
				t.Fatal(err)
			}
			if p != nil {
				batch = append(batch, p)
			}
		}
		if err := eng.CommitBatch(batch); err != nil {
			t.Fatal(err)
		}
	}

	if ref.Log().Len() != eng.Log().Len() {
		t.Fatalf("log lengths differ: %d vs %d", ref.Log().Len(), eng.Log().Len())
	}
	for _, e := range ref.Log().Entries() {
		g, ok := eng.Log().Get(e.ID())
		if !ok {
			t.Fatalf("batched log missing %s", e.ID())
		}
		if g.LSN != e.LSN {
			t.Fatalf("%s: LSN %d vs %d", e.ID(), g.LSN, e.LSN)
		}
	}
	if !data.Equal(ref.Store(), eng.Store()) {
		t.Fatalf("stores differ:\n%s", data.Diff(ref.Store(), eng.Store()))
	}
}

func seedStore() *data.Store {
	st := data.NewStore()
	st.Init("e", 0)
	return st
}

// A duplicate instance in a batch must commit nothing and leave the runs'
// frontiers unadvanced (the prepared steps can be retried or discarded).
func TestCommitBatchAtomicOnDuplicate(t *testing.T) {
	wf1, _ := wf.Fig1Specs()
	eng := engine.New(seedStore(), wlog.New())
	r1, _ := eng.NewRun("r1", wf1)

	p1, err := eng.Prepare(r1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Commit(p1); err != nil {
		t.Fatal(err)
	}
	// Re-submitting the same committed entry in a batch must fail whole.
	p2, err := eng.Prepare(r1)
	if err != nil {
		t.Fatal(err)
	}
	before := r1.Current()
	if err := eng.CommitBatch([]*engine.Prepared{p2, p2}); err == nil {
		t.Fatal("want duplicate error")
	}
	if r1.Current() != before {
		t.Fatalf("frontier advanced despite failed batch: %s", r1.Current())
	}
	if err := eng.CommitBatch([]*engine.Prepared{p2}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRunSentinelErrors(t *testing.T) {
	eng := engine.New(data.NewStore(), wlog.New())
	wf1, _ := wf.Fig1Specs()
	if _, err := eng.NewRun("", wf1); !errors.Is(err, engine.ErrBadSpec) {
		t.Fatalf("empty run ID: err = %v, want ErrBadSpec", err)
	}
	bad := &wf.Spec{Name: "bad", Start: "missing", Tasks: map[wf.TaskID]*wf.Task{}}
	if _, err := eng.NewRun("r", bad); !errors.Is(err, engine.ErrBadSpec) {
		t.Fatalf("invalid spec: err = %v, want ErrBadSpec", err)
	}
}

func TestInterleaveHonorsContext(t *testing.T) {
	wf1, _ := wf.Fig1Specs()
	eng := engine.New(seedStore(), wlog.New())
	r1, _ := eng.NewRun("r1", wf1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.RunAll(ctx, r1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r1.Done() {
		t.Fatal("run completed despite cancelled context")
	}
}
