// Package rates implements step 1 of the paper's design procedure (§VI):
// "design and evaluate the performance degradation of the analyzing
// algorithm and scheduling algorithm. Evaluate μ_k and ξ_k, where 1 ≤ k ≤ n".
//
// MeasureAnalyzer and MeasureRepair time the real recovery analyzer and the
// real repair engine on workloads with k damaged units queued and convert
// the durations to rates (units/second). FitDegradation classifies a
// measured rate curve into the degradation family (none, sqrt, linear,
// quadratic) that the STG model consumes, closing the loop between the
// implementation and the analytical model.
package rates

import (
	"fmt"
	"math"
	"time"

	"selfheal/internal/recovery"
	"selfheal/internal/scenario"
	"selfheal/internal/stg"
	"selfheal/internal/wf"
)

// Measurement is one μ_k or ξ_k estimate.
type Measurement struct {
	// K is the queue length the rate was measured at (1-based).
	K int
	// Rate is the estimated processing rate (operations/second).
	Rate float64
	// Duration is the mean measured duration of one operation.
	Duration time.Duration
}

// Config controls workload construction for the measurements.
type Config struct {
	// MaxK is the largest queue length to evaluate (the paper suggests
	// trying up to the maximum buffer size of interest, e.g. 30).
	MaxK int
	// Repeats averages each point over this many runs.
	Repeats int
	// Tasks sizes each generated workflow.
	Tasks int
	// Seed makes the workloads reproducible.
	Seed int64
}

// DefaultConfig returns a laptop-scale measurement configuration.
func DefaultConfig() Config {
	return Config{MaxK: 8, Repeats: 3, Tasks: 12, Seed: 1}
}

func (c Config) validate() error {
	if c.MaxK < 1 {
		return fmt.Errorf("rates: MaxK must be ≥ 1, got %d", c.MaxK)
	}
	if c.Repeats < 1 {
		return fmt.Errorf("rates: Repeats must be ≥ 1, got %d", c.Repeats)
	}
	if c.Tasks < 2 {
		return fmt.Errorf("rates: Tasks must be ≥ 2, got %d", c.Tasks)
	}
	return nil
}

// workloadAt builds an attacked workload whose damage is spread over k
// units (k attacked runs), so analyzing the k-th alert checks dependences
// across k units of queued recovery work. An attack aimed at a task on an
// untaken branch never commits; seeds are retried until damage exists.
func workloadAt(cfg Config, k int) (*scenario.Scenario, error) {
	rc := scenario.RandomConfig{
		Runs:    k,
		Gen:     wf.GenConfig{Tasks: cfg.Tasks, Keys: cfg.Tasks/2 + 1, MaxReads: 3, BranchProb: 0.3},
		Attacks: k + 2,
	}
	for attempt := 0; attempt < 20; attempt++ {
		s, err := scenario.Random(cfg.Seed+int64(k)+int64(attempt)*1009, rc, true)
		if err != nil {
			return nil, err
		}
		if len(s.Bad) > 0 {
			return s, nil
		}
	}
	return nil, fmt.Errorf("rates: no seed produced a committed attack at k=%d", k)
}

// MeasureAnalyzer estimates μ_k for k = 1..MaxK: the rate at which the
// recovery analyzer processes one alert when the damage spans k units.
func MeasureAnalyzer(cfg Config) ([]Measurement, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	out := make([]Measurement, 0, cfg.MaxK)
	for k := 1; k <= cfg.MaxK; k++ {
		s, err := workloadAt(cfg, k)
		if err != nil {
			return nil, err
		}
		var total time.Duration
		for r := 0; r < cfg.Repeats; r++ {
			start := time.Now()
			recovery.Analyze(s.Log(), s.Specs, s.Bad)
			total += time.Since(start)
		}
		out = append(out, toMeasurement(k, total, cfg.Repeats))
	}
	return out, nil
}

// MeasureRepair estimates ξ_k for k = 1..MaxK: the rate at which the
// scheduler executes one unit of recovery tasks with k units of damage
// present.
func MeasureRepair(cfg Config) ([]Measurement, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	out := make([]Measurement, 0, cfg.MaxK)
	for k := 1; k <= cfg.MaxK; k++ {
		s, err := workloadAt(cfg, k)
		if err != nil {
			return nil, err
		}
		var total time.Duration
		for r := 0; r < cfg.Repeats; r++ {
			start := time.Now()
			if _, err := recovery.Repair(s.Store(), s.Log(), s.Specs, s.Bad, recovery.Options{}); err != nil {
				return nil, err
			}
			total += time.Since(start)
		}
		out = append(out, toMeasurement(k, total, cfg.Repeats))
	}
	return out, nil
}

func toMeasurement(k int, total time.Duration, repeats int) Measurement {
	mean := total / time.Duration(repeats)
	if mean <= 0 {
		mean = time.Nanosecond
	}
	return Measurement{K: k, Rate: float64(time.Second) / float64(mean), Duration: mean}
}

// Family names a degradation family for FitDegradation.
type Family struct {
	Name string
	Fn   stg.Degradation
}

// Families lists the candidate degradation families, slowest first.
func Families() []Family {
	return []Family{
		{"none", stg.DegradeNone},
		{"sqrt", stg.DegradeSqrt},
		{"linear", stg.DegradeLinear},
		{"quad", stg.DegradeQuad},
	}
}

// FitDegradation picks the family whose shape best matches the measured
// rates (least squared error on the log of the normalized curve, so the
// fit is scale free). It returns the winning family and the per-family
// errors. At least two measurements are required.
func FitDegradation(ms []Measurement) (Family, map[string]float64, error) {
	if len(ms) < 2 {
		return Family{}, nil, fmt.Errorf("rates: need ≥ 2 measurements, got %d", len(ms))
	}
	base := ms[0].Rate
	if base <= 0 {
		return Family{}, nil, fmt.Errorf("rates: non-positive base rate %g", base)
	}
	errs := make(map[string]float64, 4)
	best := Family{}
	bestErr := math.Inf(1)
	for _, fam := range Families() {
		var sse float64
		for _, m := range ms {
			want := fam.Fn(base, m.K)
			if want <= 0 || m.Rate <= 0 {
				sse = math.Inf(1)
				break
			}
			d := math.Log(m.Rate) - math.Log(want)
			sse += d * d
		}
		errs[fam.Name] = sse
		if sse < bestErr {
			bestErr, best = sse, fam
		}
	}
	return best, errs, nil
}
