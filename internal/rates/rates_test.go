package rates

import (
	"math"
	"testing"

	"selfheal/internal/stg"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MaxK: 0, Repeats: 1, Tasks: 5},
		{MaxK: 2, Repeats: 0, Tasks: 5},
		{MaxK: 2, Repeats: 1, Tasks: 1},
	}
	for _, c := range bad {
		if _, err := MeasureAnalyzer(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestMeasureAnalyzerProducesPositiveRates(t *testing.T) {
	cfg := Config{MaxK: 4, Repeats: 2, Tasks: 8, Seed: 3}
	ms, err := MeasureAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d measurements, want 4", len(ms))
	}
	for i, m := range ms {
		if m.K != i+1 {
			t.Errorf("measurement %d has K=%d", i, m.K)
		}
		if m.Rate <= 0 || m.Duration <= 0 {
			t.Errorf("K=%d: non-positive rate/duration: %+v", m.K, m)
		}
	}
}

func TestMeasureRepairProducesPositiveRates(t *testing.T) {
	cfg := Config{MaxK: 3, Repeats: 2, Tasks: 8, Seed: 5}
	ms, err := MeasureRepair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d measurements, want 3", len(ms))
	}
	for _, m := range ms {
		if m.Rate <= 0 {
			t.Errorf("K=%d: non-positive rate", m.K)
		}
	}
}

// TestFitDegradationExact: exact synthetic curves must classify to their own
// family.
func TestFitDegradationExact(t *testing.T) {
	const base = 1000.0
	for _, fam := range Families() {
		ms := make([]Measurement, 0, 8)
		for k := 1; k <= 8; k++ {
			ms = append(ms, Measurement{K: k, Rate: fam.Fn(base, k)})
		}
		got, errs, err := FitDegradation(ms)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != fam.Name {
			t.Errorf("exact %s curve classified as %s (errors %v)", fam.Name, got.Name, errs)
		}
		if errs[fam.Name] > 1e-18 {
			t.Errorf("exact %s curve has nonzero error %g", fam.Name, errs[fam.Name])
		}
	}
}

// TestFitDegradationNoisy: multiplicative noise of ±10% must not flip the
// classification between well-separated families.
func TestFitDegradationNoisy(t *testing.T) {
	const base = 500.0
	noise := []float64{1.1, 0.9, 1.05, 0.95, 1.08, 0.92, 1.02, 0.98}
	for _, fam := range []Family{{"none", stg.DegradeNone}, {"quad", stg.DegradeQuad}} {
		ms := make([]Measurement, 0, 8)
		for k := 1; k <= 8; k++ {
			ms = append(ms, Measurement{K: k, Rate: fam.Fn(base, k) * noise[k-1]})
		}
		got, _, err := FitDegradation(ms)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != fam.Name {
			t.Errorf("noisy %s classified as %s", fam.Name, got.Name)
		}
	}
}

func TestFitDegradationValidation(t *testing.T) {
	if _, _, err := FitDegradation(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := FitDegradation([]Measurement{{K: 1, Rate: 1}}); err == nil {
		t.Error("single measurement accepted")
	}
	if _, _, err := FitDegradation([]Measurement{{K: 1, Rate: 0}, {K: 2, Rate: 1}}); err == nil {
		t.Error("zero base rate accepted")
	}
}

// TestMeasuredRatesFeedTheModel: the end-to-end §VI step — measure the real
// analyzer, fit a family, and build an STG model from the result.
func TestMeasuredRatesFeedTheModel(t *testing.T) {
	cfg := Config{MaxK: 3, Repeats: 1, Tasks: 6, Seed: 9}
	mu, err := MeasureAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	xi, err := MeasureRepair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	famMu, _, err := FitDegradation(mu)
	if err != nil {
		t.Fatal(err)
	}
	famXi, _, err := FitDegradation(xi)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize rates to model units (λ=1 attack per time unit) so the
	// model stays well-conditioned regardless of wall-clock speed.
	p := stg.Square(1, 10, 10, 8)
	p.F, p.G = famMu.Fn, famXi.Fn
	m, err := stg.New(p)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.SteadyMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(met.Loss) || met.Loss < 0 || met.Loss > 1 {
		t.Errorf("model from measured families produced loss %g", met.Loss)
	}
}
