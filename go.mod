module selfheal

go 1.22
