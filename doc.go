// Package repro is a from-scratch Go reproduction of "Self-Healing Workflow
// Systems under Attacks" (Meng Yu, Peng Liu, Wanyu Zang; ICDCS 2004).
//
// The library implements the paper's dependency-based on-line attack
// recovery for workflow management systems — the damage-identification
// theorems, the partial-order scheduling rules, the recovery-system
// architecture, and the Continuous-Time Markov Chain performance analysis —
// together with every substrate it needs: a multi-version data store, a
// workflow execution engine with a commit-ordered system log, exact data-
// and control-dependence analysis, an IDS simulator, a discrete-event
// validator, and checkpoint/rollback baselines.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced figure.
//
// The root package contains only the benchmark harness (bench_test.go); the
// implementation lives under internal/ and the runnable entry points under
// cmd/ and examples/.
package repro
